// Validators format tagged values into printf-style diagnostics and
// cross-check accounting by raw value; the whole file is a designated
// raw boundary. hopp-lint: allow-file(raw)
#include "check/invariants.hh"

#include <algorithm>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "hopp/hopp_system.hh"
#include "mem/llc.hh"
#include "obs/blackbox.hh"
#include "sim/event_queue.hh"
#include "vm/vms.hh"

namespace hopp::check
{

using detail::formatMessage;

void
Report::fail(const char *subsystem, std::string what)
{
    // Black box: violations are exactly the "significant events" a
    // post-mortem wants in the tail, and recording them *here* —
    // before enforce() decides whether to panic — means the dump
    // carries them even when the panic message is truncated. The
    // index (a) orders multi-violation reports. Sim time is unknown
    // at this depth, so the entry inherits the newest ring entry's
    // tick ("at or after the last event"), which also keeps the dump
    // monotonic for hopp_trace.
    obs::BlackBox &bb = obs::blackbox();
    Tick at;
    if (bb.size() > 0)
        at = bb.event(bb.size() - 1).ts;
    bb.record(obs::BbKind::InvariantViolation, at, 0,
              violations_.size(), 0);
    violations_.push_back(std::string(subsystem) + ": " +
                          std::move(what));
}

std::string
Report::summary() const
{
    std::string out;
    for (const auto &v : violations_) {
        if (!out.empty())
            out += '\n';
        out += v;
    }
    return out;
}

bool
Report::mentions(const std::string &needle) const
{
    return std::any_of(violations_.begin(), violations_.end(),
                       [&](const std::string &v) {
                           return v.find(needle) != std::string::npos;
                       });
}

void
Report::enforce() const
{
    if (ok())
        return;
    hopp_panic("invariant violation(s):\n%s", summary().c_str());
}

/**
 * The one class befriended by the core state machines. Every private
 * read the validators need — and every deliberate corruption the
 * validator *tests* need — funnels through here, so the surface the
 * core gives up stays greppable in one place.
 */
class Access
{
  public:
    // --- sim::EventQueue ----------------------------------------
    static void
    pushEvent(sim::EventQueue &eq, Tick when)
    {
        eq.pushEntry(sim::EventQueue::Entry{when, eq.seq_++,
                                            sim::InlineEvent([] {})});
    }

    // --- mem::SetAssocCache / mem::Llc --------------------------
    template <typename V>
    static void
    auditCache(const mem::SetAssocCache<V> &c, const char *what,
               Report &r)
    {
        std::size_t valid = 0;
        std::vector<std::uint64_t> tags;
        for (std::size_t s = 0; s < c.sets_; ++s) {
            for (std::size_t w = 0; w < c.ways_; ++w) {
                if (!((c.valid_[s] >> w) & 1))
                    continue;
                std::uint64_t tag = c.tags_[s * c.ways_ + w];
                ++valid;
                tags.push_back(tag);
                if ((tag & (c.sets_ - 1)) != s) {
                    r.fail(what, formatMessage(
                                     "tag %llx stored in set %zu but "
                                     "indexes to set %llu",
                                     (unsigned long long)tag, s,
                                     (unsigned long long)(tag &
                                                          (c.sets_ - 1))));
                }
            }
        }
        if (valid != c.live_) {
            r.fail(what, formatMessage(
                             "occupancy accounting leaked: %zu valid "
                             "lines but size() says %zu",
                             valid, c.live_));
        }
        if (c.live_ > c.capacity()) {
            r.fail(what, formatMessage("size %zu exceeds capacity %zu",
                                       c.live_, c.capacity()));
        }
        std::sort(tags.begin(), tags.end());
        if (std::adjacent_find(tags.begin(), tags.end()) != tags.end())
            r.fail(what, "duplicate tag present in the array");
    }

    static void
    auditLlc(const mem::Llc &llc, Report &r)
    {
        auditCache(llc.tags_, "llc", r);
    }

    static void
    tamperLlc(mem::Llc &llc)
    {
        auto &tags = llc.tags_;
        for (std::size_t s = 0; s < tags.sets_; ++s) {
            if (std::uint64_t m = tags.valid_[s]) {
                // Drop the line without fixing live_: a leak.
                tags.valid_[s] = m & (m - 1);
                return;
            }
        }
        hopp_panic("no valid LLC line to corrupt");
    }

    // --- vm::Vms / vm::Cgroup -----------------------------------
    static const std::vector<vm::Cgroup> &
    cgroups(const vm::Vms &v)
    {
        return v.cgroups_;
    }

    static const vm::PageTable &table(const vm::Vms &v)
    {
        return v.table_;
    }

    static const mem::Dram &dram(const vm::Vms &v) { return v.dram_; }

    /** True when the allocator currently has `ppn` handed out. */
    static bool
    frameAllocated(const mem::Dram &d, Ppn ppn)
    {
        return ppn >= d.base_ && ppn < d.base_ + d.total_ &&
               d.allocated_[ppn - d.base_];
    }

    static const std::list<std::uint64_t> &lru(const vm::Cgroup &cg)
    {
        return cg.lru_;
    }

    // --- core::RptCache / core::Stt -----------------------------
    /** Peek a cached RPT entry without disturbing LRU or stats. */
    static const core::RptEntry *
    peekRpt(const core::RptCache &c, Ppn ppn)
    {
        const auto *line = c.cache_.peek(ppn);
        return line ? &line->entry : nullptr;
    }

    static void
    auditStt(const core::Stt &stt, Report &r)
    {
        std::size_t valid = 0;
        for (const auto &e : stt.table_) {
            if (!e.valid)
                continue;
            ++valid;
            if (e.vpns.empty() || e.vpns.size() > stt.cfg_.historyLen) {
                r.fail("stt", formatMessage(
                                  "stream %llu history size %zu out of "
                                  "bounds [1, %u]",
                                  (unsigned long long)e.id,
                                  e.vpns.size(), stt.cfg_.historyLen));
            }
            if (e.strides.size() + 1 != e.vpns.size()) {
                r.fail("stt", formatMessage(
                                  "stream %llu has %zu strides for %zu "
                                  "vpns",
                                  (unsigned long long)e.id,
                                  e.strides.size(), e.vpns.size()));
            }
            if (e.length < e.vpns.size()) {
                r.fail("stt", formatMessage(
                                  "stream %llu lifetime length %llu "
                                  "below history size %zu",
                                  (unsigned long long)e.id,
                                  (unsigned long long)e.length,
                                  e.vpns.size()));
            }
            if (!e.vpns.empty() && e.lastVpn != e.vpns.back()) {
                r.fail("stt", formatMessage(
                                  "stream %llu cached last VPN "
                                  "diverges from its history",
                                  (unsigned long long)e.id));
            }
        }
        const core::SttStats &s = stt.stats();
        if (valid > stt.config().entries) {
            r.fail("stt", formatMessage("%zu live streams exceed the "
                                        "%zu-entry table",
                                        valid, stt.config().entries));
        }
        if (s.seeded < s.evicted ||
            s.seeded - s.evicted != valid) {
            r.fail("stt", formatMessage(
                              "entry accounting: seeded %llu - evicted "
                              "%llu != %zu live",
                              (unsigned long long)s.seeded,
                              (unsigned long long)s.evicted, valid));
        }
        if (s.fed != s.appended + s.duplicates + s.seeded) {
            r.fail("stt", formatMessage(
                              "feed accounting: fed %llu != appended "
                              "%llu + duplicates %llu + seeded %llu",
                              (unsigned long long)s.fed,
                              (unsigned long long)s.appended,
                              (unsigned long long)s.duplicates,
                              (unsigned long long)s.seeded));
        }
    }
};

void
validateEventQueue(const sim::EventQueue &eq, EventQueueWatch &w,
                   Report &r)
{
    if (!eq.empty() && eq.nextTime() < eq.now()) {
        r.fail("event-queue",
               formatMessage("pending event at tick %llu precedes "
                             "now=%llu (non-monotonic timestamp)",
                             (unsigned long long)eq.nextTime().raw(),
                             (unsigned long long)eq.now().raw()));
    }
    if (eq.now() < w.lastNow) {
        r.fail("event-queue",
               formatMessage("simulated time went backwards: %llu "
                             "after %llu",
                             (unsigned long long)eq.now().raw(),
                             (unsigned long long)w.lastNow.raw()));
    }
    if (eq.executed() < w.lastExecuted) {
        r.fail("event-queue",
               formatMessage("executed-event counter went backwards: "
                             "%llu after %llu",
                             (unsigned long long)eq.executed(),
                             (unsigned long long)w.lastExecuted));
    }
    w.lastNow = eq.now();
    w.lastExecuted = eq.executed();
}

void
validateVms(const vm::Vms &vms, Report &r)
{
    const vm::PageTable &table = Access::table(vms);

    // Pass 1: walk each cgroup's LRU list and cross-link every node
    // against the page table.
    std::unordered_set<std::uint64_t> on_lists;
    for (const vm::Cgroup &cg : Access::cgroups(vms)) {
        Pid pid = cg.pid();
        if (cg.charged() > cg.limit()) {
            r.fail("cgroup", formatMessage(
                                 "pid %u charged %llu beyond limit %llu",
                                 pid.raw(),
                                 (unsigned long long)cg.charged(),
                                 (unsigned long long)cg.limit()));
        }
        const auto &lru = Access::lru(cg);
        for (auto it = lru.begin(); it != lru.end(); ++it) {
            std::uint64_t key = *it;
            if (!on_lists.insert(key).second) {
                r.fail("lru", formatMessage(
                                  "page %u:%llu linked twice",
                                  vm::keyPid(key).raw(),
                                  (unsigned long long)vm::keyVpn(key).raw()));
                continue;
            }
            if (vm::keyPid(key) != cg.pid()) {
                r.fail("lru", formatMessage(
                                  "page %u:%llu on pid %u's list",
                                  vm::keyPid(key).raw(),
                                  (unsigned long long)vm::keyVpn(key).raw(),
                                  cg.pid().raw()));
            }
            const vm::PageInfo *pi =
                table.find(vm::keyPid(key), vm::keyVpn(key));
            if (!pi) {
                r.fail("lru", formatMessage(
                                  "dangling key %u:%llu (no page "
                                  "record)",
                                  vm::keyPid(key).raw(),
                                  (unsigned long long)vm::keyVpn(key).raw()));
                continue;
            }
            if (!pi->inLru) {
                r.fail("lru", formatMessage(
                                  "page %u:%llu is linked but its "
                                  "inLru flag is clear (bad LRU link)",
                                  vm::keyPid(key).raw(),
                                  (unsigned long long)vm::keyVpn(key).raw()));
                continue;
            }
            if (pi->lruIt != it) {
                r.fail("lru", formatMessage(
                                  "page %u:%llu stored iterator does "
                                  "not point at its node (bad LRU "
                                  "link)",
                                  vm::keyPid(key).raw(),
                                  (unsigned long long)vm::keyVpn(key).raw()));
            }
            if (pi->state != vm::PageState::Resident &&
                pi->state != vm::PageState::SwapCached) {
                r.fail("lru", formatMessage(
                                  "page %u:%llu on an LRU list in "
                                  "state %u",
                                  vm::keyPid(key).raw(),
                                  (unsigned long long)vm::keyVpn(key).raw(),
                                  unsigned(pi->state)));
            }
        }
    }

    // Pass 2: per-page state-flag legality plus charge / LRU / frame
    // accounting over the whole table.
    std::unordered_map<Pid, std::uint64_t> charged_pages;
    std::unordered_map<Pid, std::uint64_t> lru_pages;
    std::unordered_set<Ppn> frames;
    table.forEach([&](std::uint64_t key, const vm::PageInfo &pi) {
        Pid pid = vm::keyPid(key);
        auto vpn =
            static_cast<unsigned long long>(vm::keyVpn(key).raw());
        auto bad = [&](const char *what) {
            r.fail("page-state",
                   formatMessage("page %u:%llu (state %u): %s",
                                 pid.raw(), vpn, unsigned(pi.state),
                                 what));
        };
        if (pi.charged)
            ++charged_pages[pid];
        if (pi.inLru) {
            ++lru_pages[pid];
            if (!on_lists.count(key))
                bad("inLru set but the page is on no cgroup list "
                    "(bad LRU link)");
        }
        switch (pi.state) {
          case vm::PageState::Untouched:
            if (pi.inLru || pi.charged || pi.inflight || pi.injected ||
                pi.prefetched)
                bad("untouched page carries residency flags");
            break;
          case vm::PageState::Resident:
            if (!pi.inLru)
                bad("resident page missing from its LRU list");
            if (!pi.charged)
                bad("resident page not charged to its cgroup");
            if (pi.prefetched || pi.inflight)
                bad("resident page still flagged as swapcache "
                    "prefetch or in flight");
            if (!frames.insert(pi.ppn).second)
                bad("frame aliased by another in-DRAM page");
            if (!Access::frameAllocated(Access::dram(vms), pi.ppn))
                bad("references a frame the allocator never handed "
                    "out");
            break;
          case vm::PageState::SwapCached:
            if (!pi.inLru)
                bad("swapcache page missing from its LRU list");
            if (pi.charged)
                bad("swapcache page must not be charged");
            if (!pi.hasSwapCopy)
                bad("swapcache page without a swap copy");
            if (pi.injected || pi.inflight)
                bad("swapcache page flagged injected or in flight");
            if (!frames.insert(pi.ppn).second)
                bad("frame aliased by another in-DRAM page");
            if (!Access::frameAllocated(Access::dram(vms), pi.ppn))
                bad("references a frame the allocator never handed "
                    "out");
            break;
          case vm::PageState::Swapped:
            if (pi.inLru || pi.charged)
                bad("swapped-out page still holds local residency");
            if (pi.injected || pi.prefetched)
                bad("swapped-out page carries local-hit flags");
            if (pi.slot == remote::noSlot)
                bad("swapped-out page without a remote slot");
            if (!pi.hasSwapCopy)
                bad("swapped-out page without a swap copy");
            break;
        }
        if (pi.injected && pi.state != vm::PageState::Resident)
            bad("injected flag outside Resident");
    });

    for (const vm::Cgroup &cg : Access::cgroups(vms)) {
        Pid pid = cg.pid();
        auto charged_it = charged_pages.find(pid);
        std::uint64_t n_charged =
            charged_it == charged_pages.end() ? 0 : charged_it->second;
        if (n_charged != cg.charged()) {
            r.fail("cgroup", formatMessage(
                                 "pid %u charge counter %llu != %llu "
                                 "charged pages",
                                 pid.raw(),
                                 (unsigned long long)cg.charged(),
                                 (unsigned long long)n_charged));
        }
        auto lru_it = lru_pages.find(pid);
        std::uint64_t n_lru =
            lru_it == lru_pages.end() ? 0 : lru_it->second;
        if (n_lru != cg.lruSize()) {
            r.fail("cgroup", formatMessage(
                                 "pid %u LRU holds %zu nodes but %llu "
                                 "pages carry inLru",
                                 pid.raw(), cg.lruSize(),
                                 (unsigned long long)n_lru));
        }
    }

    if (frames.size() != Access::dram(vms).usedFrames()) {
        r.fail("dram", formatMessage(
                           "%zu frames referenced by pages but %llu "
                           "allocated (leaked or double-freed frame)",
                           frames.size(),
                           (unsigned long long)
                               Access::dram(vms).usedFrames()));
    }
}

void
validateLlc(const mem::Llc &llc, Report &r)
{
    Access::auditLlc(llc, r);
}

void
validateHopp(core::HoppSystem &hopp, const vm::Vms &vms, Report &r)
{
    const core::HoppConfig &cfg = hopp.config();
    const vm::PageTable &table = Access::table(vms);

    // Every present PTE must be resolvable through the RPT hierarchy:
    // the MC-side caches hold the truth, the DRAM table is the lazily
    // written-back backing copy.
    std::size_t resident = 0;
    table.forEach([&](std::uint64_t key, const vm::PageInfo &pi) {
        if (pi.state != vm::PageState::Resident)
            return;
        ++resident;
        Pid pid = vm::keyPid(key);
        Vpn vpn = vm::keyVpn(key);
        const core::RptEntry *entry = nullptr;
        for (unsigned c = 0; c < cfg.channels && !entry; ++c)
            entry = Access::peekRpt(hopp.rptCache(c), pi.ppn);
        std::optional<core::RptEntry> from_dram;
        if (!entry) {
            from_dram = hopp.rpt().load(pi.ppn);
            if (from_dram)
                entry = &*from_dram;
        }
        if (!entry) {
            r.fail("rpt", formatMessage(
                              "resident page %u:%llu (ppn %llu) has "
                              "no RPT mapping",
                              pid.raw(), (unsigned long long)vpn.raw(),
                              (unsigned long long)pi.ppn.raw()));
        } else if (entry->pid != pid || entry->vpn != vpn) {
            r.fail("rpt", formatMessage(
                              "ppn %llu maps to %u:%llu but the page "
                              "table says %u:%llu",
                              (unsigned long long)pi.ppn.raw(), entry->pid.raw(),
                              (unsigned long long)entry->vpn.raw(),
                              pid.raw(),
                              (unsigned long long)vpn.raw()));
        }
    });

    // Entry-count bound: the DRAM RPT only ever holds entries for
    // currently mapped frames.
    if (hopp.rpt().size() > resident) {
        r.fail("rpt", formatMessage(
                          "DRAM RPT holds %zu entries for %zu resident "
                          "pages (stale entries leaked)",
                          hopp.rpt().size(), resident));
    }

    for (unsigned c = 0; c < cfg.channels; ++c) {
        const core::RptCacheStats &s = hopp.rptCache(c).stats();
        if (s.hits + s.misses != s.lookups) {
            r.fail("rpt-cache",
                   formatMessage("channel %u: hits %llu + misses %llu "
                                 "!= lookups %llu",
                                 c, (unsigned long long)s.hits,
                                 (unsigned long long)s.misses,
                                 (unsigned long long)s.lookups));
        }
    }

    Access::auditStt(hopp.stt(), r);
}

namespace testing
{

void
pushEventInPast(sim::EventQueue &eq, Tick when)
{
    Access::pushEvent(eq, when);
}

void
leakLlcOccupancy(mem::Llc &llc)
{
    Access::tamperLlc(llc);
}

} // namespace testing

} // namespace hopp::check
