/**
 * @file
 * Periodic structural validators for the simulator's core state
 * machines (the runtime half of the correctness-tooling layer; see
 * DESIGN.md "Correctness tooling").
 *
 * Each validator cross-checks one subsystem's redundant state — LRU
 * lists against page-table flags, cgroup charge counters against
 * per-page charge bits, RPT contents against present PTEs — and
 * records human-readable violations into a Report instead of aborting,
 * so tests can prove that injected corruption is detected. Production
 * callers (runner::Machine's debug hook) call Report::enforce(), which
 * panics with the full list.
 *
 * Validators only read simulator state. They run between events, where
 * every subsystem is quiescent, so any violation is a real bug rather
 * than a mid-transition artefact.
 */

#pragma once

#include <string>
#include <vector>

#include "check/check.hh"
#include "common/types.hh"

namespace hopp::sim
{
class EventQueue;
}
namespace hopp::mem
{
class Llc;
}
namespace hopp::vm
{
class Vms;
}
namespace hopp::core
{
class HoppSystem;
}

namespace hopp::check
{

/** Grants validators and test tampers access to private state. */
class Access;

/**
 * Accumulates violations from one validation pass.
 */
class Report
{
  public:
    /** Record one violation against a subsystem. */
    void fail(const char *subsystem, std::string what);

    /** True when no violations were recorded. */
    bool ok() const { return violations_.empty(); }

    /** All recorded violations. */
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }

    /** One line per violation, newline-joined (empty when ok). */
    std::string summary() const;

    /** True when some violation mentions `needle` (test helper). */
    bool mentions(const std::string &needle) const;

    /** Panic with the full violation list unless ok(). */
    void enforce() const;

  private:
    std::vector<std::string> violations_;
};

/**
 * Cross-observation state for event-queue monotonicity: simulated time
 * and the executed-event counter must never move backwards between two
 * validation passes over the same queue.
 */
struct EventQueueWatch
{
    Tick lastNow;
    std::uint64_t lastExecuted = 0;
};

/** Event-queue invariants: timestamp monotonicity, no past events. */
void validateEventQueue(const sim::EventQueue &eq, EventQueueWatch &w,
                        Report &r);

/**
 * VM-subsystem invariants: page-state flag legality, LRU/page-table
 * cross-linking, cgroup charge accounting, frame aliasing, DRAM
 * occupancy.
 */
void validateVms(const vm::Vms &vms, Report &r);

/** LLC invariants: tag-array occupancy accounting and set placement. */
void validateLlc(const mem::Llc &llc, Report &r);

/**
 * HoPP hardware-table invariants: every present PTE is mapped by the
 * RPT cache hierarchy, RPT entry-count bounds, STT entry bounds and
 * counter accounting. Requires a started HoppSystem.
 */
void validateHopp(core::HoppSystem &hopp, const vm::Vms &vms, Report &r);

namespace testing
{

/**
 * Corruption injectors for validator tests: each breaks an invariant
 * the corresponding validator must catch. Never called outside tests.
 */

/** Schedule a no-op event at `when`, bypassing the past-check. */
void pushEventInPast(sim::EventQueue &eq, Tick when);

/** Invalidate one LLC line without fixing occupancy accounting. */
void leakLlcOccupancy(mem::Llc &llc);

} // namespace testing

} // namespace hopp::check

