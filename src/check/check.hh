/**
 * @file
 * Invariant-check macros.
 *
 * HOPP_CHECK is always on and guards invariants cheap enough for
 * release runs (it is hopp_assert under a name that marks the call
 * site as a structural invariant rather than an argument check).
 * HOPP_DCHECK compiles to nothing unless HOPP_DCHECKS_ENABLED is
 * defined (Debug builds, or -DHOPP_DCHECKS=ON), for checks on hot
 * paths that would distort release performance.
 *
 * This header depends only on common/ so every layer of the tree —
 * including sim/ and mem/, which the check *library* sits above — can
 * use the macros without a dependency cycle.
 */

#pragma once

#include "common/logging.hh"

/** Always-on structural invariant; panics with a core dump on failure. */
#define HOPP_CHECK(cond, ...) hopp_assert(cond, __VA_ARGS__)

#ifdef HOPP_DCHECKS_ENABLED

/** Debug-only invariant: active in Debug builds or -DHOPP_DCHECKS=ON. */
#define HOPP_DCHECK(cond, ...) hopp_assert(cond, __VA_ARGS__)

#else

/**
 * Compiled out: operands stay syntactically checked (and their
 * variables odr-used) inside unevaluated sizeof, at zero runtime cost.
 */
#define HOPP_DCHECK(cond, ...)                                           \
    do {                                                                 \
        (void)sizeof((cond) ? 1 : 0);                                    \
        (void)sizeof(::hopp::detail::formatMessage(__VA_ARGS__));        \
    } while (0)

#endif // HOPP_DCHECKS_ENABLED

