/**
 * @file
 * Fault-driven prefetcher interface shared by the kernel-based
 * baselines (Fastswap readahead, Leap, VMA-based, Depth-N). Each
 * prefetcher observes page faults through the VMS fault callback and
 * issues prefetches through the VMS insertion paths.
 */

#pragma once

#include <string>

#include "vm/listener.hh"

namespace hopp::prefetch
{

/** Well-known origin ids used by the machine assembly. */
namespace origin
{
inline constexpr vm::Origin readahead = 1; //!< Fastswap swap readahead
inline constexpr vm::Origin leap = 2;      //!< Leap majority prefetch
inline constexpr vm::Origin vma = 3;       //!< Linux VMA readahead
inline constexpr vm::Origin depthn = 4;    //!< Depth-N injection
inline constexpr vm::Origin hopp = 5;      //!< HoPP prefetch engine
} // namespace origin

/**
 * A fault-driven prefetcher.
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /** Human-readable name for reports. */
    virtual std::string name() const = 0;

    /** Origin id stamped on this prefetcher's fetches. */
    virtual vm::Origin origin() const = 0;

    /** Invoked by the VMS on every non-cold page fault. */
    virtual void onFault(const vm::FaultContext &ctx) = 0;
};

} // namespace hopp::prefetch

