/**
 * @file
 * Fastswap-style swap readahead (§II-B "strict-pattern prefetcher"):
 * on every fault, fetch the cluster of pages whose swap slots surround
 * the faulting page's slot — Linux's offset-based readahead.
 *
 * Like Linux's swap readahead, the cluster size adapts to the recent
 * readahead hit rate (vm.page-cluster caps it at 8): when its fetches
 * stop being hit — e.g. because a better prefetcher already covers the
 * stream — the window backs off instead of wasting link bandwidth.
 */

#pragma once

#include <algorithm>

#include "prefetch/prefetcher.hh"
#include "remote/swap_backend.hh"
#include "vm/vms.hh"

namespace hopp::prefetch
{

/** Readahead knobs. */
struct ReadaheadConfig
{
    /** Max cluster fetched around the faulting slot (page-cluster). */
    unsigned maxWindow = 8;

    /** Smallest adaptive window. */
    unsigned minWindow = 2;

    /** Faults per window-adaptation epoch. */
    unsigned epochFaults = 64;

    /** Hit ratio above which the window grows. */
    double growThreshold = 0.5;

    /** Hit ratio below which the window halves. */
    double shrinkThreshold = 0.25;
};

/**
 * Swap-offset cluster readahead into the swapcache.
 */
class Readahead : public Prefetcher, public vm::PageEventListener
{
  public:
    Readahead(vm::Vms &vms, remote::SwapBackend &backend,
              const ReadaheadConfig &cfg = {})
        : vms_(vms), backend_(backend), cfg_(cfg),
          window_(cfg.maxWindow)
    {
    }

    std::string name() const override { return "fastswap-readahead"; }

    vm::Origin origin() const override { return origin::readahead; }

    void
    onFault(const vm::FaultContext &ctx) override
    {
        if (++faults_ % cfg_.epochFaults == 0)
            adaptWindow();
        if (ctx.slot == remote::noSlot)
            return;
        auto cluster =
            backend_.neighbors(ctx.slot, window_ / 2, window_ / 2);
        for (const auto &owner : cluster) {
            vms_.prefetchToSwapCache(owner.pid, owner.vpn,
                                     origin::readahead, ctx.now);
        }
    }

    // Self-observation for window adaptation (swapcache hits are the
    // only feedback kernel readahead gets).
    void
    onPrefetchCompleted(Pid, Vpn, vm::Origin o, Tick, bool) override
    {
        if (o == origin::readahead)
            ++completed_;
    }

    void
    onPrefetchHit(Pid, Vpn, vm::Origin o, Tick, Tick, bool) override
    {
        if (o == origin::readahead)
            ++hits_;
    }

    /** Current adaptive window (tests). */
    unsigned window() const { return window_; }

  private:
    void
    adaptWindow()
    {
        std::uint64_t c = completed_ - epochCompleted_;
        std::uint64_t h = hits_ - epochHits_;
        epochCompleted_ = completed_;
        epochHits_ = hits_;
        if (c == 0)
            return;
        double ratio = static_cast<double>(h) / static_cast<double>(c);
        if (ratio > cfg_.growThreshold)
            window_ = std::min(window_ * 2, cfg_.maxWindow);
        else if (ratio < cfg_.shrinkThreshold)
            window_ = std::max(window_ / 2, cfg_.minWindow);
    }

    vm::Vms &vms_;
    remote::SwapBackend &backend_;
    ReadaheadConfig cfg_;
    unsigned window_;
    std::uint64_t faults_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t epochCompleted_ = 0;
    std::uint64_t epochHits_ = 0;
};

} // namespace hopp::prefetch

