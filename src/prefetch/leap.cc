#include "prefetch/leap.hh"

#include <cstdlib>
#include <vector>

namespace hopp::prefetch
{

std::int64_t
Leap::detectStride() const
{
    // Strides between consecutive fault addresses, newest last. Faults
    // from different processes interleave freely — exactly the §II-B
    // limitation (2) the paper demonstrates in Figure 1.
    if (history_.size() < 2)
        return 0;
    std::vector<std::int64_t> strides;
    strides.reserve(history_.size() - 1);
    for (std::size_t i = 1; i < history_.size(); ++i) {
        strides.push_back(
            signedDelta(history_[i - 1].second, history_[i].second));
    }
    // Try growing windows over the newest strides; accept the first
    // Boyer-Moore candidate that is a true majority.
    for (unsigned w = cfg_.minWindow; w <= strides.size(); w *= 2) {
        std::size_t begin = strides.size() - w;
        std::int64_t cand = 0;
        int count = 0;
        for (std::size_t i = begin; i < strides.size(); ++i) {
            if (count == 0) {
                cand = strides[i];
                count = 1;
            } else {
                count += strides[i] == cand ? 1 : -1;
            }
        }
        unsigned occurrences = 0;
        for (std::size_t i = begin; i < strides.size(); ++i)
            occurrences += strides[i] == cand;
        // Non-strict majority (>= w/2), as in Leap's implementation:
        // with two interleaved streams the cross-stream stride can hit
        // exactly w/2 and Leap locks onto the *wrong* stride — the
        // §VI-E pathology that makes it lose to Fastswap.
        if (cand != 0 && occurrences * 2 >= w)
            return cand;
        if (w == strides.size())
            break;
    }
    return 0;
}

void
Leap::adaptDepth()
{
    std::uint64_t c = completed_ - epochCompleted_;
    std::uint64_t h = hits_ - epochHits_;
    epochCompleted_ = completed_;
    epochHits_ = hits_;
    if (c == 0)
        return;
    double ratio = static_cast<double>(h) / static_cast<double>(c);
    if (ratio > cfg_.growThreshold)
        depth_ = std::min(depth_ * 2, cfg_.maxDepth);
    else
        depth_ = std::max(depth_ / 2, 1u);
}

void
Leap::onFault(const vm::FaultContext &ctx)
{
    history_.emplace_back(ctx.pid, ctx.vpn);
    if (history_.size() > cfg_.historySize)
        history_.pop_front();

    if (++faults_ % cfg_.epochFaults == 0)
        adaptDepth();

    std::int64_t stride = detectStride();
    if (stride != 0) {
        for (unsigned i = 1; i <= depth_; ++i) {
            std::int64_t delta = stride * static_cast<std::int64_t>(i);
            // Reject targets below page 0 (ctx.vpn - Vpn{} is the
            // page's unsigned distance from zero).
            if (delta < 0 &&
                static_cast<std::uint64_t>(-delta) > ctx.vpn - Vpn{})
                break;
            vms_.prefetchToSwapCache(ctx.pid, offsetBy(ctx.vpn, delta),
                                     origin::leap, ctx.now);
        }
        return;
    }
    // No trend: shallow sequential fallback.
    for (unsigned i = 1; i <= cfg_.fallbackDepth; ++i) {
        vms_.prefetchToSwapCache(ctx.pid, ctx.vpn + i, origin::leap,
                                 ctx.now);
    }
}

} // namespace hopp::prefetch
