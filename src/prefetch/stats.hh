/**
 * @file
 * Prefetch metric accounting, implementing the paper's §VI-A metrics:
 *
 *  - accuracy  = prefetch hits / completed prefetches,
 *  - coverage  = prefetch hits / (demand remote reads + prefetch hits),
 *  - timeliness = time from a prefetched page's arrival to first hit.
 *
 * Tracked per origin so a machine running Fastswap readahead *and* the
 * HoPP engine (the paper's deployment, §V) reports both parts, as
 * Figure 11 splits coverage into swapcache hits vs DRAM hits.
 */

#pragma once

#include <array>
#include <cstdint>

#include "stats/stats.hh"
#include "vm/listener.hh"

namespace hopp::prefetch
{

/** Per-origin prefetch counters. */
struct OriginStats
{
    std::uint64_t completed = 0;
    std::uint64_t hits = 0;
    std::uint64_t dramHits = 0;      //!< injected-PTE hits (no fault)
    std::uint64_t swapCacheHits = 0; //!< 2.3 us prefetch-hits
    std::uint64_t evictedUnused = 0;
    stats::LogHistogram timeliness{40};
    std::uint64_t lateHits = 0; //!< hit before (or at) data arrival

    /** §VI-A accuracy of this origin. */
    double
    accuracy() const
    {
        return completed ? static_cast<double>(hits) /
                               static_cast<double>(completed)
                         : 0.0;
    }
};

/**
 * VMS listener computing the paper's prefetch metrics.
 */
class PrefetchStats : public vm::PageEventListener
{
  public:
    static constexpr std::size_t maxOrigins = 8;

    void
    onDemandRemote(Pid, Vpn, Tick) override
    {
        ++demandRemote_;
    }

    void
    onPrefetchCompleted(Pid, Vpn, vm::Origin o, Tick, bool) override
    {
        ++originStats_[o].completed;
    }

    void
    onPrefetchHit(Pid, Vpn, vm::Origin o, Tick ready_at, Tick hit_at,
                  bool dram_hit) override
    {
        OriginStats &s = originStats_[o];
        ++s.hits;
        if (dram_hit)
            ++s.dramHits;
        else
            ++s.swapCacheHits;
        if (hit_at > ready_at)
            s.timeliness.sample(hit_at - ready_at);
        else
            ++s.lateHits;
    }

    void
    onPrefetchEvicted(Pid, Vpn, vm::Origin o, Tick) override
    {
        ++originStats_[o].evictedUnused;
    }

    /** Counters of one origin. */
    const OriginStats &
    forOrigin(vm::Origin o) const
    {
        return originStats_[o];
    }

    /** Demand remote page reads (prefetch misses). */
    std::uint64_t demandRemote() const { return demandRemote_; }

    /** Total prefetch hits over all origins. */
    std::uint64_t
    totalHits() const
    {
        std::uint64_t n = 0;
        for (const auto &s : originStats_)
            n += s.hits;
        return n;
    }

    /** Total completed prefetches over all origins. */
    std::uint64_t
    totalCompleted() const
    {
        std::uint64_t n = 0;
        for (const auto &s : originStats_)
            n += s.completed;
        return n;
    }

    /** Combined §VI-A accuracy over all origins. */
    double
    accuracy() const
    {
        std::uint64_t c = totalCompleted();
        return c ? static_cast<double>(totalHits()) /
                       static_cast<double>(c)
                 : 0.0;
    }

    /** Combined §VI-A coverage over all origins. */
    double
    coverage() const
    {
        std::uint64_t h = totalHits();
        std::uint64_t denom = demandRemote_ + h;
        return denom ? static_cast<double>(h) /
                           static_cast<double>(denom)
                     : 0.0;
    }

    /** Coverage counting only DRAM (injected) hits, as Figure 21. */
    double
    dramHitCoverage() const
    {
        std::uint64_t h = 0;
        for (const auto &s : originStats_)
            h += s.dramHits;
        std::uint64_t all = totalHits();
        std::uint64_t denom = demandRemote_ + all;
        return denom ? static_cast<double>(h) /
                           static_cast<double>(denom)
                     : 0.0;
    }

    /** Zero every origin's counters (between repetitions). */
    void
    reset()
    {
        for (auto &s : originStats_)
            s = OriginStats{};
        demandRemote_ = 0;
    }

  private:
    std::array<OriginStats, maxOrigins> originStats_{};
    std::uint64_t demandRemote_ = 0;
};

} // namespace hopp::prefetch

