/**
 * @file
 * VMA-based readahead (Linux 5.4 swap_vma_readahead, referenced by
 * §II-B and evaluated in Figure 22): prefetch the pages *virtually*
 * adjacent to the fault, rather than the swap-offset neighbours.
 */

#pragma once

#include "prefetch/prefetcher.hh"
#include "vm/vms.hh"

namespace hopp::prefetch
{

/** VMA readahead knobs. */
struct VmaConfig
{
    /** Total window of virtually-adjacent pages fetched per fault. */
    unsigned window = 8;
};

/**
 * Virtual-address neighbourhood readahead into the swapcache.
 */
class VmaPrefetcher : public Prefetcher
{
  public:
    VmaPrefetcher(vm::Vms &vms, const VmaConfig &cfg = {})
        : vms_(vms), cfg_(cfg)
    {
    }

    std::string name() const override { return "vma-readahead"; }

    vm::Origin origin() const override { return origin::vma; }

    void
    onFault(const vm::FaultContext &ctx) override
    {
        unsigned half = cfg_.window / 2;
        for (unsigned i = 1; i <= half; ++i) {
            vms_.prefetchToSwapCache(ctx.pid, ctx.vpn + i, origin::vma,
                                     ctx.now);
            if (ctx.vpn - Vpn{} >= i) {
                vms_.prefetchToSwapCache(ctx.pid, ctx.vpn - i,
                                         origin::vma, ctx.now);
            }
        }
    }

  private:
    vm::Vms &vms_;
    VmaConfig cfg_;
};

} // namespace hopp::prefetch

