/**
 * @file
 * Leap's majority-based prefetcher (Maruf & Chowdhury, ATC'20; the
 * paper's state-of-the-art baseline, §II-B). Detects the majority
 * stride over a window of recent *fault* addresses (that is all a
 * kernel-based system can see) and prefetches along it into the
 * swapcache, with a hit-rate-adaptive prefetch window.
 */

#pragma once

#include <deque>

#include "prefetch/prefetcher.hh"
#include "vm/vms.hh"

namespace hopp::prefetch
{

/** Leap knobs. */
struct LeapConfig
{
    /** Fault-address history capacity. */
    unsigned historySize = 32;

    /** Smallest majority window tried (doubles up to historySize). */
    unsigned minWindow = 4;

    /** Initial prefetch depth along the detected stride. */
    unsigned initialDepth = 4;

    /** Max prefetch depth. */
    unsigned maxDepth = 32;

    /** Faults per depth-adaptation epoch. */
    unsigned epochFaults = 32;

    /** Hit ratio above which the depth doubles (else halves). */
    double growThreshold = 0.5;

    /** Depth of the no-trend sequential fallback. */
    unsigned fallbackDepth = 2;
};

/**
 * Majority-stride prefetcher over fault addresses.
 *
 * Also a PageEventListener: it watches its own prefetch hits to adapt
 * the prefetch depth, exactly the feedback Leap gets from swapcache
 * hits (and which early PTE injection would destroy, §II-C).
 */
class Leap : public Prefetcher, public vm::PageEventListener
{
  public:
    Leap(vm::Vms &vms, const LeapConfig &cfg = {})
        : vms_(vms), cfg_(cfg), depth_(cfg.initialDepth)
    {
    }

    std::string name() const override { return "leap"; }

    vm::Origin origin() const override { return origin::leap; }

    void onFault(const vm::FaultContext &ctx) override;

    // PageEventListener: self-observation for depth adaptation.
    void
    onPrefetchCompleted(Pid, Vpn, vm::Origin o, Tick, bool) override
    {
        if (o == origin::leap)
            ++completed_;
    }

    void
    onPrefetchHit(Pid, Vpn, vm::Origin o, Tick, Tick, bool) override
    {
        if (o == origin::leap)
            ++hits_;
    }

    /** Current adaptive prefetch depth (tests/benches). */
    unsigned depth() const { return depth_; }

    /**
     * Majority stride over the last window of fault addresses, or 0
     * when no stride reaches a majority. Exposed for the §II-B
     * motivation study.
     */
    std::int64_t detectStride() const;

  private:
    void adaptDepth();

    vm::Vms &vms_;
    LeapConfig cfg_;
    std::deque<std::pair<Pid, Vpn>> history_;
    unsigned depth_;
    std::uint64_t faults_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t epochCompleted_ = 0;
    std::uint64_t epochHits_ = 0;
};

} // namespace hopp::prefetch

