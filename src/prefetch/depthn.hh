/**
 * @file
 * Depth-N prefetching (§II-C, Figures 16/17; after Awad et al. [9]):
 * on every fault, fetch the next N virtually-consecutive pages with
 * early PTE injection and a *fixed* N — it cannot observe hits (no
 * faults on injected pages), so it cannot adapt, and wrong guesses sit
 * at the MRU end of the LRU list where they are hard to evict.
 */

#pragma once

#include "prefetch/prefetcher.hh"
#include "vm/vms.hh"

namespace hopp::prefetch
{

/**
 * Fixed-depth early-PTE-injection prefetcher.
 */
class DepthN : public Prefetcher
{
  public:
    DepthN(vm::Vms &vms, unsigned depth) : vms_(vms), depth_(depth) {}

    std::string
    name() const override
    {
        return "depth-" + std::to_string(depth_);
    }

    vm::Origin origin() const override { return origin::depthn; }

    void
    onFault(const vm::FaultContext &ctx) override
    {
        for (unsigned i = 1; i <= depth_; ++i) {
            vms_.prefetchInject(ctx.pid, ctx.vpn + i, origin::depthn,
                                ctx.now);
        }
    }

    /** Configured depth. */
    unsigned depth() const { return depth_; }

  private:
    vm::Vms &vms_;
    unsigned depth_;
};

} // namespace hopp::prefetch

