#include "obs/trace_writer.hh"

#include <cstdio>
#include <cstring>

namespace hopp::obs
{

namespace
{

/** Append a JSON string literal (names/cats are plain ASCII). */
void
appendQuoted(std::string &out, const char *s)
{
    out += '"';
    for (const char *p = s; *p; ++p) {
        char c = *p;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    out += '"';
}

/** Append nanoseconds as decimal microseconds, integer math only. */
void
appendMicros(std::string &out, std::uint64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    out += buf;
}

/** Append one event as a trace_event JSON object. */
void
appendEvent(std::string &out, const TraceEvent &e)
{
    out += "{\"name\":";
    appendQuoted(out, e.name);
    out += ",\"cat\":";
    appendQuoted(out, e.cat);
    out += ",\"ph\":\"";
    out += e.ph;
    out += "\",\"ts\":";
    // Unit-change boundary: ticks leave the tagged domain here.
    appendMicros(out, e.ts.raw()); // hopp-lint: allow(raw)
    if (e.ph == 'X') {
        out += ",\"dur\":";
        appendMicros(out, e.dur);
    }
    out += ",\"pid\":0,\"tid\":";
    out += std::to_string(e.tid);
    if (e.ph == 'b' || e.ph == 'e') {
        char buf[32];
        std::snprintf(buf, sizeof(buf), ",\"id\":\"0x%llx\"",
                      static_cast<unsigned long long>(e.value));
        out += buf;
    }
    if (e.ph == 'C') {
        out += ",\"args\":{\"value\":";
        out += std::to_string(e.value);
        out += '}';
    }
    if (e.ph == 'i')
        out += ",\"s\":\"t\""; // thread-scoped instant
    out += '}';
}

} // namespace

std::string
toChromeJson(const Tracer &tracer)
{
    std::string out;
    out.reserve(tracer.size() * 96 + 64);
    out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &e : tracer.sorted()) {
        if (!first)
            out += ",\n";
        first = false;
        appendEvent(out, e);
    }
    out += "]}\n";
    return out;
}

std::string
toJsonl(const Tracer &tracer)
{
    std::string out;
    out.reserve(tracer.size() * 96);
    for (const TraceEvent &e : tracer.sorted()) {
        appendEvent(out, e);
        out += '\n';
    }
    return out;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "obs: cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
    bool ok = n == content.size() && std::fclose(f) == 0;
    if (!ok)
        std::fprintf(stderr, "obs: short write to %s\n", path.c_str());
    return ok;
}

} // namespace hopp::obs
