/**
 * @file
 * Structural validation and summarisation of a trace_event document —
 * the engine behind `hopp_trace --check` and the emitter tests.
 *
 * Checks performed:
 *  - every event carries ph/name/ts (and dur for 'X', id for 'b'/'e');
 *  - timestamps are monotonically non-decreasing in document order
 *    (the writer sorts, so an unsorted file indicates a broken write);
 *  - 'B'/'E' spans balance per track with LIFO name matching;
 *  - 'b'/'e' async spans pair up per (cat, name, id), none left open.
 *
 * While walking, it accumulates the summary `hopp_trace` prints:
 * per-phase event counts, per-name total span time ('X' plus matched
 * 'B'/'E' pairs), per-track completed-span counts, and per-counter
 * value sums over the 'C' samples.
 */

#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace hopp::obs
{

/** Aggregate time of one span name. */
struct SpanTotal
{
    double totalUs = 0.0;
    std::uint64_t count = 0;
};

/** Aggregate of one counter series. */
struct CounterTotal
{
    double sum = 0.0;
    std::uint64_t samples = 0;
};

/** Validation outcome plus the summary data. */
struct TraceCheck
{
    std::size_t events = 0;
    std::map<char, std::uint64_t> phaseCounts;
    std::map<std::string, SpanTotal> spans; //!< per-name totals

    /** Completed spans per track: 'X' plus matched 'E'/'e' closes. */
    std::map<std::uint32_t, std::uint64_t> trackSpans;

    /** Per-counter sums over every 'C' sample's args.value. */
    std::map<std::string, CounterTotal> counters;

    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }
};

namespace detail
{

/** Pending 'B' frame on one track's span stack. */
struct OpenSpan
{
    std::string name;
    double tsUs;
};

inline void
checkEvent(const json::Value &ev, std::size_t index, double &last_ts,
           std::map<std::uint32_t, std::vector<OpenSpan>> &stacks,
           std::map<std::string, double> &asyncOpen, TraceCheck &out)
{
    auto err = [&](const std::string &msg) {
        out.errors.push_back("event " + std::to_string(index) + ": " +
                             msg);
    };

    if (!ev.isObject()) {
        err("not a JSON object");
        return;
    }
    const json::Value *ph = ev.find("ph");
    const json::Value *name = ev.find("name");
    const json::Value *ts = ev.find("ts");
    if (!ph || !ph->isString() || ph->str().size() != 1) {
        err("missing or malformed \"ph\"");
        return;
    }
    if (!name || !name->isString()) {
        err("missing \"name\"");
        return;
    }
    if (!ts || !ts->isNumber()) {
        err("missing numeric \"ts\"");
        return;
    }

    char phase = ph->str()[0];
    ++out.events;
    ++out.phaseCounts[phase];

    double t = ts->number();
    if (t < last_ts)
        err("timestamp " + std::to_string(t) +
            "us goes backwards (prev " + std::to_string(last_ts) +
            "us)");
    last_ts = t;

    const json::Value *tid = ev.find("tid");
    std::uint32_t track =
        tid && tid->isNumber()
            ? static_cast<std::uint32_t>(tid->number())
            : 0;

    switch (phase) {
      case 'X': {
        const json::Value *dur = ev.find("dur");
        if (!dur || !dur->isNumber() || dur->number() < 0) {
            err("'X' event without a non-negative \"dur\"");
            break;
        }
        SpanTotal &s = out.spans[name->str()];
        s.totalUs += dur->number();
        ++s.count;
        ++out.trackSpans[track];
        break;
      }
      case 'B':
        stacks[track].push_back(OpenSpan{name->str(), t});
        break;
      case 'E': {
        auto &stack = stacks[track];
        if (stack.empty()) {
            err("'E' \"" + name->str() + "\" on track " +
                std::to_string(track) + " with no open span");
            break;
        }
        if (stack.back().name != name->str()) {
            err("'E' \"" + name->str() + "\" does not match open 'B' \"" +
                stack.back().name + "\" on track " +
                std::to_string(track));
            break;
        }
        SpanTotal &s = out.spans[stack.back().name];
        s.totalUs += t - stack.back().tsUs;
        ++s.count;
        ++out.trackSpans[track];
        stack.pop_back();
        break;
      }
      case 'b':
      case 'e': {
        const json::Value *id = ev.find("id");
        if (!id || !id->isString()) {
            err("async event without string \"id\"");
            break;
        }
        const json::Value *cat = ev.find("cat");
        std::string key = (cat && cat->isString() ? cat->str() : "") +
                          "/" + name->str() + "/" + id->str();
        if (phase == 'b') {
            if (asyncOpen.count(key)) {
                err("async 'b' reuses live id " + id->str());
                break;
            }
            asyncOpen[key] = t;
        } else {
            auto it = asyncOpen.find(key);
            if (it == asyncOpen.end()) {
                err("async 'e' \"" + name->str() + "\" id " + id->str() +
                    " without matching 'b'");
                break;
            }
            SpanTotal &s = out.spans[name->str()];
            s.totalUs += t - it->second;
            ++s.count;
            ++out.trackSpans[track];
            asyncOpen.erase(it);
        }
        break;
      }
      case 'C': {
        const json::Value *args = ev.find("args");
        const json::Value *value =
            args && args->isObject() ? args->find("value") : nullptr;
        if (value && value->isNumber()) {
            CounterTotal &c = out.counters[name->str()];
            c.sum += value->number();
            ++c.samples;
        }
        break;
      }
      case 'i':
        break;
      default:
        err(std::string("unknown phase '") + phase + "'");
    }
}

} // namespace detail

/**
 * Validate a sequence of event objects in document order.
 * Works for both input framings: the "traceEvents" array of a Chrome
 * trace and the line-by-line objects of a JSONL file.
 */
inline TraceCheck
checkEvents(const std::vector<const json::Value *> &events)
{
    TraceCheck out;
    double last_ts = 0.0;
    std::map<std::uint32_t, std::vector<detail::OpenSpan>> stacks;
    std::map<std::string, double> asyncOpen;
    for (std::size_t i = 0; i < events.size(); ++i)
        detail::checkEvent(*events[i], i, last_ts, stacks, asyncOpen,
                           out);
    for (const auto &[track, stack] : stacks) {
        for (const auto &open : stack)
            out.errors.push_back("unbalanced span \"" + open.name +
                                 "\" left open on track " +
                                 std::to_string(track));
    }
    for (const auto &[key, ts] : asyncOpen)
        out.errors.push_back("async span " + key + " never ended");
    return out;
}

/**
 * Validate a parsed Chrome trace document: an object holding a
 * "traceEvents" array, or a bare array of events.
 */
inline TraceCheck
checkTrace(const json::Value &root)
{
    const json::Value *events = &root;
    if (root.isObject()) {
        events = root.find("traceEvents");
        if (!events || !events->isArray()) {
            TraceCheck out;
            out.errors.push_back(
                "document has no \"traceEvents\" array");
            return out;
        }
    } else if (!root.isArray()) {
        TraceCheck out;
        out.errors.push_back("document is neither object nor array");
        return out;
    }
    std::vector<const json::Value *> ptrs;
    ptrs.reserve(events->items().size());
    for (const auto &e : events->items())
        ptrs.push_back(&e);
    return checkEvents(ptrs);
}

} // namespace hopp::obs

