/**
 * @file
 * Always-on black-box flight ring: the last N significant simulator
 * events (faults, reclaim decisions, prefetch injections, link
 * completions, invariant-check entries), recorded unconditionally at
 * ~ns cost and dumped as deterministic JSONL when something dies.
 *
 * The tracer (tracer.hh) is opt-in and buffers everything; the black
 * box is the opposite trade: always recording, fixed memory, and only
 * ever *read* post-mortem. It turns "sweep job 137 of 16k panicked"
 * into an actionable last-1024-events report.
 *
 * Mechanics
 *  - One `BlackBox` per host thread (`obs::blackbox()`), so SweepPool
 *    workers never contend and each crash dump is exactly the dying
 *    run's tail. `Machine::run()` clears the calling thread's ring at
 *    start, so a dump spans one run.
 *  - `record()` is a handful of stores into a preallocated
 *    `std::array` ring — no allocation, no branches beyond the index
 *    wrap — cheap enough to stay on even in Release sweeps.
 *  - Dump paths: `check::` invariant failures and DCHECK/hopp_assert
 *    aborts funnel through `hopp::detail::terminateWithMessage`,
 *    where the crash hook installed by `blackbox()` writes the ring
 *    to `$HOPP_BLACKBOX_OUT` (or stderr); `Machine::dumpForensics()`
 *    writes it on demand.
 *  - The JSONL lines are Chrome-trace instant events, so a dump opens
 *    with `hopp_trace --summary` and parses with `obs/json.hh`.
 *
 * Determinism: entries carry simulated ticks and deterministic
 * payloads only — a dump of the same (config, seed) run is
 * byte-identical. No wall-clock anywhere.
 */

#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "common/types.hh"

namespace hopp::obs
{

/** What a black-box entry records. */
enum class BbKind : std::uint8_t {
    FaultCold,       //!< first touch of an untouched page
    FaultSwapHit,    //!< fault served from the swap cache
    FaultWait,       //!< fault joined an in-flight remote read
    FaultRemote,     //!< full remote demand read
    Evict,           //!< reclaim victim written back / dropped
    PrefetchIssue,   //!< prefetch read issued to the backend
    PrefetchInject,  //!< prefetched page injected/adopted into a VMS
    PrefetchFill,    //!< prefetch completion landed
    LinkTransfer,    //!< link serialization completed
    HoppDrain,       //!< HPD ring drained into the trainer
    InvariantCheck,  //!< check:: pass entered (last-known-good marker)
    InvariantViolation, //!< check:: validator recorded a failure
};

/** Stable dotted name of @p k (JSONL event names). */
inline const char *
bbKindName(BbKind k)
{
    switch (k) {
    case BbKind::FaultCold:
        return "fault.cold";
    case BbKind::FaultSwapHit:
        return "fault.swap_hit";
    case BbKind::FaultWait:
        return "fault.wait";
    case BbKind::FaultRemote:
        return "fault.remote";
    case BbKind::Evict:
        return "reclaim.evict";
    case BbKind::PrefetchIssue:
        return "prefetch.issue";
    case BbKind::PrefetchInject:
        return "prefetch.inject";
    case BbKind::PrefetchFill:
        return "prefetch.fill";
    case BbKind::LinkTransfer:
        return "link.transfer";
    case BbKind::HoppDrain:
        return "hopp.drain";
    case BbKind::InvariantCheck:
        return "check.enter";
    case BbKind::InvariantViolation:
        return "check.violation";
    }
    return "unknown";
}

/** One ring entry: a timestamped kind plus two payload words. */
struct BlackBoxEvent
{
    Tick ts;               //!< simulated time of the event
    std::uint64_t seq = 0; //!< global record index (never wraps)
    std::uint64_t a = 0;   //!< payload (vpn/frame/bytes/… per kind)
    std::uint64_t b = 0;   //!< payload (completion tick/count/…)
    std::uint32_t pid = 0; //!< owning process, 0 when machine-level
    BbKind kind = BbKind::InvariantCheck;
};

/**
 * Fixed-size, allocation-free ring of the last `capacity` events.
 * All state is inline; recording never touches the allocator.
 */
class BlackBox
{
  public:
    static constexpr std::size_t capacity = 1024;

    /** Append one entry, overwriting the oldest once full. */
    void
    record(BbKind kind, Tick ts, std::uint32_t pid, std::uint64_t a,
           std::uint64_t b)
    {
        BlackBoxEvent &e = ring_[seq_ % capacity];
        e.ts = ts;
        e.seq = seq_;
        e.a = a;
        e.b = b;
        e.pid = pid;
        e.kind = kind;
        ++seq_;
    }

    /** Entries currently held (≤ capacity). */
    std::size_t
    size() const
    {
        return seq_ < capacity ? static_cast<std::size_t>(seq_) : capacity;
    }

    /** Total entries ever recorded (dump header, wrap detection). */
    std::uint64_t totalRecorded() const { return seq_; }

    /** Entry @p i in oldest-to-newest order; i < size(). */
    const BlackBoxEvent &
    event(std::size_t i) const
    {
        const std::uint64_t oldest = seq_ - size();
        return ring_[(oldest + i) % capacity];
    }

    /** Forget everything (start of a Machine run). */
    void clear() { seq_ = 0; }

    /**
     * Render the ring as JSONL of Chrome-trace instant events (one
     * object per line, fixed key order) — readable by `hopp_trace
     * --summary` and `obs/json.hh`.
     *
     * Lines are emitted in (tick, seq) order, not append order: some
     * records legitimately carry scheduled ticks ahead of the context
     * that recorded them (a serialized prefetch batch stamps each
     * issue tick, a fill stamps its completion), and the batched pump
     * lets threads record fault entries ahead of the event queue's
     * clock, so append order is causal but not time-ordered. Sorting
     * at dump time keeps the recorded truth while satisfying the
     * trace contract (`hopp_trace` rejects backwards timestamps);
     * `seq` breaks ties so equal-tick lines keep record order and the
     * dump stays deterministic.
     */
    std::string
    toJsonl() const
    {
        std::array<const BlackBoxEvent *, capacity> order;
        const std::size_t n = size();
        for (std::size_t i = 0; i < n; ++i)
            order[i] = &event(i);
        std::sort(order.begin(), order.begin() + n,
                  [](const BlackBoxEvent *x, const BlackBoxEvent *y) {
                      if (x->ts != y->ts)
                          return x->ts < y->ts;
                      return x->seq < y->seq;
                  });

        std::string out;
        out.reserve(n * 128);
        char buf[192];
        for (std::size_t i = 0; i < n; ++i) {
            const BlackBoxEvent &e = *order[i];
            // Unit-change boundary: ticks leave the tagged domain
            // for the trace file. hopp-lint: allow(raw, raw-int-addr)
            const unsigned long long tick = e.ts.raw();
            std::snprintf(
                buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"bb\",\"ph\":\"i\","
                "\"ts\":%llu.%03llu,\"pid\":0,\"tid\":%u,\"s\":\"t\","
                "\"args\":{\"seq\":%llu,\"tick\":%llu,\"a\":%llu,"
                "\"b\":%llu}}\n",
                bbKindName(e.kind), tick / 1000, tick % 1000, e.pid,
                static_cast<unsigned long long>(e.seq), tick,
                static_cast<unsigned long long>(e.a),
                static_cast<unsigned long long>(e.b));
            out += buf;
        }
        return out;
    }

  private:
    std::array<BlackBoxEvent, capacity> ring_{};
    std::uint64_t seq_ = 0;
};

namespace detail
{

/** The calling thread's ring (defined here for the hook below). */
inline BlackBox &
threadRing()
{
    thread_local BlackBox ring;
    return ring;
}

/**
 * Crash-hook body: write the dying thread's ring to the path named by
 * HOPP_BLACKBOX_OUT, or to stderr when unset. Runs after the panic
 * message prints and before abort(); see logging.cc.
 */
inline void
blackBoxCrashDump()
{
    const BlackBox &bb = threadRing();
    if (bb.size() == 0)
        return;
    const std::string jsonl = bb.toJsonl();
    const char *path = std::getenv("HOPP_BLACKBOX_OUT");
    if (path != nullptr && *path != '\0') {
        std::FILE *f = std::fopen(path, "w");
        if (f != nullptr) {
            std::fwrite(jsonl.data(), 1, jsonl.size(), f);
            std::fclose(f);
            std::fprintf(stderr,
                         "[blackbox] wrote last %zu events to %s\n",
                         bb.size(), path);
            return;
        }
        std::fprintf(stderr, "[blackbox] cannot open %s; dumping here\n",
                     path);
    }
    std::fprintf(stderr, "[blackbox] last %zu events:\n%s", bb.size(),
                 jsonl.c_str());
}

} // namespace detail

/**
 * The calling thread's black box. First use on a thread installs the
 * process-wide crash hook so panics dump the ring automatically.
 */
inline BlackBox &
blackbox()
{
    thread_local bool hooked =
        (hopp::detail::setCrashHook(&detail::blackBoxCrashDump), true);
    (void)hooked;
    return detail::threadRing();
}

} // namespace hopp::obs
