/**
 * @file
 * Fault-path latency recorder: a vm::PageEventListener sampling exact
 * Histograms (p50/p90/p99) for every access-resolution class the
 * paper's §II-A breakdown distinguishes:
 *
 *   dram_hit        first touch of an early-injected page (HoPP /
 *                   Depth-N): no fault, just the DRAM-hit charge
 *   prefetch_hit    swapcache hit, the 2.3 us kernel path
 *   cold_fault      first-touch zero-fill minor fault
 *   inflight_wait   fault that waited on an in-flight prefetch
 *   remote_fault    full demand page-in over RDMA (the paper's
 *                   8.3-11.3 us window)
 *   remote_transfer the remote_fault remainder after subtracting the
 *                   fixed §II-A kernel steps (1+2+3+6): RDMA
 *                   serialization + base latency + link queueing +
 *                   any direct reclaim — the load-dependent part
 */

#pragma once

#include <array>

#include "stats/stats.hh"
#include "vm/cost_model.hh"
#include "vm/listener.hh"

namespace hopp::obs
{

/** Access-resolution classes with their own latency histogram. */
enum class LatencyClass : std::uint8_t
{
    DramHit = 0,
    PrefetchHit,
    ColdFault,
    InflightWait,
    RemoteFault,
    RemoteTransfer,
};

inline constexpr std::size_t latencyClassCount = 6;

/** Stable snake_case name (stat keys, CSV columns). */
inline const char *
latencyClassName(LatencyClass c)
{
    switch (c) {
      case LatencyClass::DramHit: return "dram_hit";
      case LatencyClass::PrefetchHit: return "prefetch_hit";
      case LatencyClass::ColdFault: return "cold_fault";
      case LatencyClass::InflightWait: return "inflight_wait";
      case LatencyClass::RemoteFault: return "remote_fault";
      case LatencyClass::RemoteTransfer: return "remote_transfer";
    }
    return "?";
}

/**
 * The listener. Attach to a Vms; all sampling is exact (the
 * histograms keep every sample), so percentile queries have no
 * quantization error.
 */
class FaultLatency : public vm::PageEventListener
{
  public:
    /**
     * Feed the §II-A constants used for decomposition: the per-miss
     * DRAM-hit charge (the latency of an injected first touch) and
     * the fixed kernel overhead of a remote fault (steps 1+2+3+6).
     */
    void
    setCostModel(const vm::CostModel &cost)
    {
        dramHitCost_ = cost.dramHit;
        remoteOverhead_ = cost.remoteFaultOverhead();
    }

    void
    onPrefetchHit(Pid, Vpn, vm::Origin, Tick, Tick, bool dram_hit) override
    {
        // Injected pages resolve without a fault; their first touch
        // costs exactly the DRAM-hit charge.
        if (dram_hit)
            hist(LatencyClass::DramHit).sample(dramHitCost_);
    }

    void
    onFaultResolved(Pid, Vpn, vm::FaultKind kind, Duration latency,
                    Tick) override
    {
        switch (kind) {
          case vm::FaultKind::Cold:
            hist(LatencyClass::ColdFault).sample(latency);
            break;
          case vm::FaultKind::SwapCacheHit:
            hist(LatencyClass::PrefetchHit).sample(latency);
            break;
          case vm::FaultKind::InflightWait:
            hist(LatencyClass::InflightWait).sample(latency);
            break;
          case vm::FaultKind::Remote:
            hist(LatencyClass::RemoteFault).sample(latency);
            hist(LatencyClass::RemoteTransfer)
                .sample(latency > remoteOverhead_
                            ? latency - remoteOverhead_
                            : 0);
            break;
        }
    }

    /** Histogram of one class. */
    const stats::Histogram &
    of(LatencyClass c) const
    {
        return hists_[static_cast<std::size_t>(c)];
    }

    /** Clear all histograms (between repetitions). */
    void
    reset()
    {
        for (auto &h : hists_)
            h.reset();
    }

    /**
     * Record count/mean/p50/p90/p99 of every non-empty class into a
     * StatSet (keys `<class>.p50_ns` etc.).
     */
    void
    dumpStats(stats::StatSet &s) const
    {
        for (std::size_t i = 0; i < latencyClassCount; ++i) {
            const stats::Histogram &h = hists_[i];
            if (h.count() == 0)
                continue;
            std::string p(latencyClassName(static_cast<LatencyClass>(i)));
            s.record(p + ".count", static_cast<double>(h.count()),
                     "samples");
            s.record(p + ".mean_ns", h.mean(), "mean latency");
            s.record(p + ".p50_ns",
                     static_cast<double>(h.percentile(0.50)),
                     "median latency");
            s.record(p + ".p90_ns",
                     static_cast<double>(h.percentile(0.90)),
                     "90th percentile");
            s.record(p + ".p99_ns",
                     static_cast<double>(h.percentile(0.99)),
                     "99th percentile");
        }
    }

  private:
    stats::Histogram &
    hist(LatencyClass c)
    {
        return hists_[static_cast<std::size_t>(c)];
    }

    std::array<stats::Histogram, latencyClassCount> hists_;
    Duration dramHitCost_ = 0;
    Duration remoteOverhead_ = 0;
};

} // namespace hopp::obs

