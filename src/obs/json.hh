/**
 * @file
 * Minimal recursive-descent JSON parser for the observability tooling:
 * `hopp_trace` and the trace-emitter tests parse the writer's output
 * back with it, closing the loop without an external dependency.
 *
 * Supports the full JSON grammar the trace writer emits (objects,
 * arrays, strings with basic escapes, numbers, booleans, null). Not a
 * general-purpose validator: surrogate pairs are passed through
 * unchecked and numbers are parsed with strtod.
 */

#pragma once

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hopp::obs::json
{

/** One parsed JSON value (a tagged tree node). */
class Value
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type() const { return type_; }

    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Boolean payload (false unless isBool()). */
    bool boolean() const { return boolean_; }

    /** Numeric payload (0.0 unless isNumber()). */
    double number() const { return number_; }

    /** String payload (empty unless isString()). */
    const std::string &str() const { return string_; }

    /** Array elements (empty unless isArray()). */
    const std::vector<Value> &items() const { return items_; }

    /** Object members in document order (empty unless isObject()). */
    const std::vector<std::pair<std::string, Value>> &
    members() const
    {
        return members_;
    }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : members_) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }

    // --- construction helpers used by the parser -----------------
    static Value makeNull() { return Value{}; }

    static Value
    makeBool(bool b)
    {
        Value v;
        v.type_ = Type::Bool;
        v.boolean_ = b;
        return v;
    }

    static Value
    makeNumber(double d)
    {
        Value v;
        v.type_ = Type::Number;
        v.number_ = d;
        return v;
    }

    static Value
    makeString(std::string s)
    {
        Value v;
        v.type_ = Type::String;
        v.string_ = std::move(s);
        return v;
    }

    static Value
    makeArray()
    {
        Value v;
        v.type_ = Type::Array;
        return v;
    }

    static Value
    makeObject()
    {
        Value v;
        v.type_ = Type::Object;
        return v;
    }

    std::vector<Value> &itemsMut() { return items_; }

    std::vector<std::pair<std::string, Value>> &
    membersMut()
    {
        return members_;
    }

  private:
    Type type_ = Type::Null;
    bool boolean_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Value> items_;
    std::vector<std::pair<std::string, Value>> members_;
};

namespace detail
{

/** Parser state: cursor over the input plus the first error. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    expect(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text.compare(pos, len, word) != 0)
            return fail("bad literal");
        pos += len;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("dangling escape");
                char e = text[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("short \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code += static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code += static_cast<unsigned>(h - 'a') + 10;
                        else if (h >= 'A' && h <= 'F')
                            code += static_cast<unsigned>(h - 'A') + 10;
                        else
                            return fail("bad \\u digit");
                    }
                    // ASCII range only; wider code points are rendered
                    // as '?' (the writer never emits them).
                    out += code < 0x80 ? static_cast<char>(code) : '?';
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(Value &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{') {
            ++pos;
            out = Value::makeObject();
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                if (!expect(':'))
                    return false;
                Value member;
                if (!parseValue(member))
                    return false;
                out.membersMut().emplace_back(std::move(key),
                                              std::move(member));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                return expect('}');
            }
        }
        if (c == '[') {
            ++pos;
            out = Value::makeArray();
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                Value item;
                if (!parseValue(item))
                    return false;
                out.itemsMut().push_back(std::move(item));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                return expect(']');
            }
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value::makeString(std::move(s));
            return true;
        }
        if (c == 't') {
            if (!literal("true", 4))
                return false;
            out = Value::makeBool(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false", 5))
                return false;
            out = Value::makeBool(false);
            return true;
        }
        if (c == 'n') {
            if (!literal("null", 4))
                return false;
            out = Value::makeNull();
            return true;
        }
        // Number.
        const char *start = text.c_str() + pos;
        char *end = nullptr;
        double d = std::strtod(start, &end);
        if (end == start)
            return fail("bad value");
        pos += static_cast<std::size_t>(end - start);
        out = Value::makeNumber(d);
        return true;
    }
};

} // namespace detail

/**
 * Parse @p text as one JSON document.
 * @return true on success; on failure @p err (if non-null) gets a
 *         one-line description with the byte offset.
 */
inline bool
parse(const std::string &text, Value &out, std::string *err = nullptr)
{
    detail::Parser p{text, 0, {}};
    if (!p.parseValue(out)) {
        if (err)
            *err = p.error;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (err)
            *err = "trailing garbage at offset " + std::to_string(p.pos);
        return false;
    }
    return true;
}

} // namespace hopp::obs::json

