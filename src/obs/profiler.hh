/**
 * @file
 * Host-side self-profiler: scoped, hierarchical wall-time attribution
 * for the simulator itself.
 *
 * The flight recorder (tracer.hh) observes *simulated* time; this
 * profiler observes where *host* wall time goes while producing it —
 * workload generation vs `Vms::access` vs the radix walk vs the LLC
 * vs event dispatch — which is exactly the breakdown the batched
 * access-stream work (ROADMAP item 3) needs to be steered by data.
 *
 * Model
 *  - A fixed `Zone` enum names the instrumented regions; `HOPP_PROF`
 *    drops a `ScopedZone` RAII guard that stamps `steady_clock` on
 *    entry and exit.
 *  - Each host thread owns a preallocated flat `ZoneTable` (one slot
 *    per zone plus a fixed-depth zone stack — no allocation on the
 *    record path). Tables register themselves with a process-wide
 *    registry; when a thread exits (SweepPool workers), its table is
 *    merged into a retired accumulator so no samples are lost.
 *  - `collect()` merges live + retired tables into a `Report`;
 *    `toJson(report)` renders the deterministic-ordered JSON that
 *    `hopp-run --profile-out` and `bench_simcore` emit and
 *    `hopp-report` consumes.
 *  - Re-entrant zones (e.g. a zone entered again underneath itself)
 *    count every entry but only the outermost activation accumulates
 *    wall time, so totals never double-count.
 *
 * Host/sim firewall
 *  - Profiler state is host-only, like the software TLB's host
 *    counters: nothing here feeds back into simulated time, stats,
 *    traces, or metrics. A byte-identity ctest
 *    (hopp_run.profiler_on_off_identical) holds run/trace/metrics/
 *    stats artifacts identical profiler-on vs profiler-off.
 *  - This header and profiler.cc are the ONLY sanctioned wall-clock
 *    site in src/ outside runner/sweep*: `hopp_lint` bans
 *    steady_clock/system_clock everywhere else in the tree.
 *  - When disabled (the constructed state), `ScopedZone` is an
 *    unarmed no-op: one predictable branch, no clock read. Defining
 *    HOPP_PROFILER_DISABLED compiles `HOPP_PROF` away entirely.
 */

#pragma once

#include <array>
// Wall-clock sanctioned here only: hopp_lint carves out obs/profiler.*
// as the one component whose *purpose* is host time.
#include <chrono>
#include <cstdint>
#include <mutex> // hopp-lint: allow(thread-primitive) table registry below
#include <string>
#include <vector>

namespace hopp::obs::prof
{

/**
 * Instrumented host-time regions. `Run` wraps the whole
 * `Machine::run()`; every other zone nests somewhere beneath it, so
 * `sum(self of all zones but Run) / total(Run)` is the attributed
 * fraction the bench acceptance gate checks.
 */
enum class Zone : std::uint8_t {
    Run,            //!< Machine::run() end to end (build/sim/collect)
    AccessPump,     //!< Machine::pump() two-level scheduler loop
    EventDispatch,  //!< EventQueue::runOne body
    WorkloadGen,    //!< generator next()/nextBatch() block refills
    VmsAccess,      //!< Vms::access/accessBatch (TLB + fast path)
    RadixWalk,      //!< page-table walk inside Vms::accessSlow
    FaultPath,      //!< non-resident handling in Vms::accessSlow
    Llc,            //!< Llc::access tag probe + fill
    Reclaim,        //!< Vms::evictOne / kswapd passes
    LinkTransfer,   //!< Link::transfer serialization
    HoppDrain,      //!< HoppSystem::drainRing (trainer feed)
    InvariantCheck, //!< check:: validators from Machine::maybeCheck
    MetricsSample,  //!< MetricsSampler gauge sweep
    MachineBuild,   //!< Machine::build component construction
    Count
};

inline constexpr unsigned zoneCount = static_cast<unsigned>(Zone::Count);

/** Stable lower-snake name of @p z (JSON keys, report rows). */
const char *zoneName(Zone z);

/** Per-zone accumulator. All times are host nanoseconds. */
struct ZoneSlot
{
    std::uint64_t totalNs = 0; //!< inclusive, outermost activations
    std::uint64_t childNs = 0; //!< time attributed to nested zones
    std::uint64_t count = 0;   //!< entries (including re-entrant ones)
    std::uint32_t active = 0;  //!< live activation depth (transient)
};

namespace detail
{

/** Runtime switch. Off by default; flipped by prof::enable(). */
inline bool g_enabled = false;

/** Host monotonic now, in ns. The profiler's single clock source. */
inline std::uint64_t
nowNs()
{
    // Reading the host clock is this component's entire job.
    // hopp-analyze: allow(hotpath-clock)
    const auto t = std::chrono::steady_clock::now();
    // hopp-analyze: allow(hotpath-clock) unit conversion of that read
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        t.time_since_epoch());
    return static_cast<std::uint64_t>(ns.count());
}

} // namespace detail

/** True while profiling is on (hot-path guard for ScopedZone). */
inline bool
enabled()
{
    return detail::g_enabled;
}

/**
 * Per-thread flat zone table: one ZoneSlot per zone and a fixed-depth
 * stack of open zones. Fully preallocated — entering/exiting a zone
 * touches only this struct and the clock.
 */
class ZoneTable
{
  public:
    inline ZoneTable();
    inline ~ZoneTable();

    ZoneTable(const ZoneTable &) = delete;
    ZoneTable &operator=(const ZoneTable &) = delete;

    /** Open-zone state a ScopedZone carries between enter and exit. */
    struct Frame
    {
        std::uint64_t startNs = 0;
        Zone zone = Zone::Count;
        Zone parent = Zone::Count;
        bool outer = false;
    };

    /** Enter @p z: push it on the zone stack and stamp the clock. */
    Frame
    enter(Zone z)
    {
        Frame f;
        f.zone = z;
        ZoneSlot &s = slots_[static_cast<unsigned>(z)];
        f.outer = s.active++ == 0;
        f.parent = depth_ > 0 && depth_ <= kMaxDepth ? stack_[depth_ - 1]
                                                     : Zone::Count;
        if (depth_ < kMaxDepth)
            stack_[depth_] = z;
        ++depth_;
        // The profiler is the sanctioned wall-clock consumer; reading
        // it here is the zone's entire job.
        // hopp-analyze: allow(hotpath-clock)
        f.startNs = detail::nowNs();
        return f;
    }

    /** Close the frame @p f: accumulate elapsed ns into its slot. */
    void
    exit(const Frame &f)
    {
        // hopp-analyze: allow(hotpath-clock) paired exit stamp
        const std::uint64_t ns = detail::nowNs() - f.startNs;
        --depth_;
        ZoneSlot &s = slots_[static_cast<unsigned>(f.zone)];
        --s.active;
        ++s.count;
        if (f.outer) {
            s.totalNs += ns;
            if (f.parent != Zone::Count && f.parent != f.zone)
                slots_[static_cast<unsigned>(f.parent)].childNs += ns;
        }
    }

    /** Slot accumulators, indexed by Zone. */
    const std::array<ZoneSlot, zoneCount> &slots() const { return slots_; }

    /** Zero all accumulators (open-zone depth is preserved). */
    void
    clearCounts()
    {
        for (ZoneSlot &s : slots_) {
            s.totalNs = 0;
            s.childNs = 0;
            s.count = 0;
        }
    }

  private:
    static constexpr unsigned kMaxDepth = 64;

    std::array<ZoneSlot, zoneCount> slots_{};
    std::array<Zone, kMaxDepth> stack_{};
    unsigned depth_ = 0;
};

namespace detail
{

/**
 * Process-wide table registry. Touched only at thread start/exit and
 * at collect/reset time — never on the zone record path — so a mutex
 * is fine (and TSan-visible).
 */
struct Registry
{
    Registry() { live.reserve(64); }

    // Registration is host-thread lifecycle, not simulation.
    // hopp-lint: allow(thread-primitive)
    std::mutex mu;
    std::vector<ZoneTable *> live;
    std::array<ZoneSlot, zoneCount> retired{};
};

/**
 * The one registry. A function-local static in an inline function is
 * a single instance across every TU, which keeps the record path
 * header-only: lower layers that drop HOPP_PROF zones need no link
 * edge to hopp_obs.
 */
inline Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace detail

// Tables register on construction (thread start) and fold their
// counts into the retired accumulator on destruction (thread exit),
// so SweepPool workers that die before collect() still report.
inline ZoneTable::ZoneTable()
{
    detail::Registry &reg = detail::registry();
    // hopp-lint: allow(thread-primitive) once per host thread
    const std::lock_guard<std::mutex> lock(reg.mu);
    // Registration is thread-start init, not the record path.
    // hopp-analyze: allow(hotpath-alloc)
    reg.live.push_back(this);
}

inline ZoneTable::~ZoneTable()
{
    detail::Registry &reg = detail::registry();
    // hopp-lint: allow(thread-primitive) once per host thread
    const std::lock_guard<std::mutex> lock(reg.mu);
    for (unsigned z = 0; z < zoneCount; ++z) {
        reg.retired[z].totalNs += slots_[z].totalNs;
        reg.retired[z].childNs += slots_[z].childNs;
        reg.retired[z].count += slots_[z].count;
    }
    for (std::size_t i = 0; i < reg.live.size(); ++i) {
        if (reg.live[i] == this) {
            reg.live.erase(reg.live.begin() +
                           static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
}

/** This thread's zone table (created and registered on first use). */
inline ZoneTable &
threadTable()
{
    thread_local ZoneTable table;
    return table;
}

/**
 * RAII zone guard. Unarmed (no clock read, no table touch) when the
 * profiler is disabled or @p when is false.
 */
class ScopedZone
{
  public:
    explicit ScopedZone(Zone z) : ScopedZone(z, true) {}

    ScopedZone(Zone z, bool when)
    {
        if (enabled() && when) {
            table_ = &threadTable();
            frame_ = table_->enter(z);
        }
    }

    ~ScopedZone()
    {
        if (table_ != nullptr)
            table_->exit(frame_);
    }

    ScopedZone(const ScopedZone &) = delete;
    ScopedZone &operator=(const ScopedZone &) = delete;

  private:
    ZoneTable *table_ = nullptr;
    ZoneTable::Frame frame_;
};

/** Merged view of every table, produced by collect(). */
struct Report
{
    std::array<ZoneSlot, zoneCount> zones{};

    /** Inclusive wall time of the Run zone. */
    std::uint64_t
    wallNs() const
    {
        return zones[static_cast<unsigned>(Zone::Run)].totalNs;
    }

    /** Self (exclusive) time of @p z: total minus nested zones. */
    std::uint64_t
    selfNs(Zone z) const
    {
        const ZoneSlot &s = zones[static_cast<unsigned>(z)];
        return s.totalNs - (s.childNs < s.totalNs ? s.childNs : s.totalNs);
    }

    /** Sum of self time over every zone except Run. */
    std::uint64_t attributedNs() const;

    /** attributedNs() / wallNs(); 0 when nothing ran. */
    double attributedFraction() const;
};

/** Turn profiling on or off (affects ScopedZone arming only). */
void enable(bool on = true);

/** Merge all live and retired tables into one report. */
Report collect();

/** Zero every accumulator, live and retired. */
void reset();

/**
 * Render @p r as the deterministic-ordered `hopp-profile-v1` JSON
 * document (zones in enum order, fixed key order).
 */
std::string toJson(const Report &r);

} // namespace hopp::obs::prof

// Token pasting so several HOPP_PROF statements can share a scope.
#define HOPP_PROF_CAT2(a, b) a##b
#define HOPP_PROF_CAT(a, b) HOPP_PROF_CAT2(a, b)

#if defined(HOPP_PROFILER_DISABLED)
#define HOPP_PROF(zone) ((void)0)
#define HOPP_PROF_IF(zone, when) ((void)0)
#else
/** Attribute the enclosing scope's host wall time to Zone::zone. */
#define HOPP_PROF(zone)                                                      \
    ::hopp::obs::prof::ScopedZone HOPP_PROF_CAT(hoppProfScope_, __LINE__)(   \
        ::hopp::obs::prof::Zone::zone)
/** As HOPP_PROF, but armed only when @p when is true. */
#define HOPP_PROF_IF(zone, when)                                             \
    ::hopp::obs::prof::ScopedZone HOPP_PROF_CAT(hoppProfScope_, __LINE__)(   \
        ::hopp::obs::prof::Zone::zone, (when))
#endif
