#include "obs/metrics.hh"

#include <cstdio>

#include "common/logging.hh"
#include "obs/profiler.hh"

namespace hopp::obs
{

MetricsSampler::MetricsSampler(sim::EventQueue &eq, Duration period)
    : eq_(eq), period_(period)
{
    hopp_assert(period_ > 0, "metrics period must be positive");
}

void
MetricsSampler::addGauge(std::string name, std::function<double()> read)
{
    hopp_assert(!started_, "gauges must be registered before start()");
    gauges_.push_back(Gauge{std::move(name), std::move(read)});
    series_.emplace_back();
}

void
MetricsSampler::sampleNow()
{
    Tick now = eq_.now();
    times_.push_back(now);
    for (std::size_t g = 0; g < gauges_.size(); ++g) {
        double v = gauges_[g].read();
        series_[g].push_back(v);
        if (tracer_) {
            // Gauge names live in gauges_, which is frozen after
            // start(), so the c_str() pointers stay valid.
            tracer_->counter("metrics", gauges_[g].name.c_str(), now,
                             static_cast<std::uint64_t>(v));
        }
    }
}

void
MetricsSampler::fire()
{
    HOPP_PROF(MetricsSample);
    sampleNow();
    // Reschedule only while the machine still has work — pending
    // events, or (threads are pumped outside the queue) live
    // application threads: a sampler that always rearms would keep the
    // pump from ever draining.
    if (!eq_.empty() || (live_ && live_()))
        eq_.scheduleIn(period_, [this] { fire(); });
}

void
MetricsSampler::start()
{
    hopp_assert(!started_, "sampler already started");
    started_ = true;
    eq_.scheduleIn(period_, [this] { fire(); });
}

std::string
MetricsSampler::toCsv() const
{
    std::string out = "tick_ns";
    for (const Gauge &g : gauges_)
        out += "," + g.name;
    out += '\n';
    char buf[40];
    for (std::size_t row = 0; row < times_.size(); ++row) {
        // CSV is a serialization boundary. hopp-lint: allow(raw)
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(times_[row].raw()));
        out += buf;
        for (const auto &col : series_) {
            std::snprintf(buf, sizeof(buf), ",%.10g", col[row]);
            out += buf;
        }
        out += '\n';
    }
    return out;
}

} // namespace hopp::obs
