/**
 * @file
 * Flight-recorder core: an in-memory structured event buffer every
 * simulated component can append to through a nullable `Tracer*`
 * handle.
 *
 * Events follow the Chrome trace_event model so a recorded run opens
 * directly in Perfetto / chrome://tracing:
 *
 *   B/E  duration begin/end (genuinely nested spans, e.g. HPD drain)
 *   X    complete span with explicit duration (fault handling, link
 *        transfers — spans whose begin and end are known at once)
 *   i    instant marker
 *   C    counter sample (queue depths, miss-stream counts)
 *   b/e  async span matched by id (prefetch issue -> fill, which
 *        overlap freely across pages)
 *
 * All timestamps are simulator ticks (ns since simulation start) —
 * never wall-clock time — so traces are byte-deterministic across
 * runs; `hopp_lint` bans std::chrono in src/obs to keep it that way.
 *
 * Zero-cost-when-disabled: components hold a `Tracer*` that defaults
 * to nullptr and test it inline before every record call; the Tracer
 * itself early-returns (and allocates nothing) while disabled, so an
 * accidentally-threaded handle on a disabled tracer is still free.
 *
 * Event names and categories are `const char*` and must point at
 * string literals (the buffer stores the pointers, not copies).
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace hopp::obs
{

/**
 * Stable thread/track ids for the Perfetto timeline. Application
 * fault spans run on the faulting process' own track (tid = pid);
 * machine-level components use ids far above any 16-bit-range pid
 * count a machine configures in practice.
 */
namespace track
{
inline constexpr std::uint32_t machine = 0;    //!< whole-run span
inline constexpr std::uint32_t sim = 60000;    //!< event queue
inline constexpr std::uint32_t mem = 60001;    //!< MC miss stream
inline constexpr std::uint32_t netRead = 60002;
inline constexpr std::uint32_t netWrite = 60003;
inline constexpr std::uint32_t hopp = 60004;   //!< software plane
inline constexpr std::uint32_t kswapd = 60005; //!< background reclaim

/** Track of a process' fault spans. */
inline std::uint32_t
ofPid(Pid pid)
{
    // Track-id packing for the trace file. hopp-lint: allow(raw)
    return pid.raw();
}
} // namespace track

/** One recorded trace event (16-byte-ish POD, buffered in order). */
struct TraceEvent
{
    Tick ts;                  //!< simulated time of the event
    Duration dur = 0;         //!< span length ('X' only)
    std::uint64_t value = 0;  //!< counter value ('C') or async id (b/e)
    std::uint64_t seq = 0;    //!< record order, tie-break within a tick
    const char *cat = "";     //!< category (component), string literal
    const char *name = "";    //!< event name, string literal
    std::uint32_t tid = 0;    //!< timeline track
    char ph = 'i';            //!< trace_event phase
};

/**
 * The flight recorder: appends events while enabled, does nothing
 * (not even an allocation) while disabled.
 */
class Tracer
{
  public:
    /**
     * Turn recording on (or off). Off is the constructed state. The
     * first enable reserves the event buffer up front so steady-state
     * recording does not allocate on the simulator hot path; growth
     * past the reservation is amortized doubling.
     */
    void
    enable(bool on = true)
    {
        enabled_ = on;
        if (on && events_.capacity() == 0)
            events_.reserve(initialCapacity);
    }

    /** True while recording. */
    bool enabled() const { return enabled_; }

    /** Begin a nested duration span on @p tid. */
    void
    begin(const char *cat, const char *name, Tick ts,
          std::uint32_t tid = track::machine)
    {
        push('B', cat, name, ts, 0, 0, tid);
    }

    /** End the innermost open span with the same name on @p tid. */
    void
    end(const char *cat, const char *name, Tick ts,
        std::uint32_t tid = track::machine)
    {
        push('E', cat, name, ts, 0, 0, tid);
    }

    /** Record a complete span: [ts, ts + dur) on @p tid. */
    void
    complete(const char *cat, const char *name, Tick ts, Duration dur,
             std::uint32_t tid = track::machine)
    {
        push('X', cat, name, ts, dur, 0, tid);
    }

    /** Record an instant marker. */
    void
    instant(const char *cat, const char *name, Tick ts,
            std::uint32_t tid = track::machine)
    {
        push('i', cat, name, ts, 0, 0, tid);
    }

    /** Record a counter sample. */
    void
    counter(const char *cat, const char *name, Tick ts,
            std::uint64_t value)
    {
        push('C', cat, name, ts, 0, value, track::machine);
    }

    /** Begin an async span matched to its end by @p id. */
    void
    asyncBegin(const char *cat, const char *name, Tick ts,
               std::uint64_t id)
    {
        push('b', cat, name, ts, 0, id, track::machine);
    }

    /** End the async span opened with the same (cat, name, id). */
    void
    asyncEnd(const char *cat, const char *name, Tick ts,
             std::uint64_t id)
    {
        push('e', cat, name, ts, 0, id, track::machine);
    }

    /**
     * Deterministic id source for async spans (monotonic, starts at
     * 1; 0 is never returned so callers can use it as "no span").
     */
    std::uint64_t nextAsyncId() { return ++asyncIds_; }

    /** Recorded events in record order (unsorted). */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** Number of recorded events. */
    std::size_t size() const { return events_.size(); }

    /** Buffer capacity, exposed for the zero-allocation test. */
    std::size_t bufferCapacity() const { return events_.capacity(); }

    /**
     * Events sorted by (ts, seq). Threads record fault spans at their
     * local time, which can run ahead of the event queue within a
     * quantum, so record order is not globally time-ordered; the
     * stable (ts, seq) sort restores the monotonic timeline the trace
     * format wants, deterministically.
     */
    std::vector<TraceEvent>
    sorted() const
    {
        std::vector<TraceEvent> out = events_;
        std::sort(out.begin(), out.end(),
                  [](const TraceEvent &a, const TraceEvent &b) {
                      if (a.ts != b.ts)
                          return a.ts < b.ts;
                      return a.seq < b.seq;
                  });
        return out;
    }

    /** Drop all recorded events (keeps enabled state and ids). */
    void clear() { events_.clear(); }

  private:
    /// First-enable reservation: steady runs stay within it, so the
    /// per-event push below never reallocates on the hot path.
    static constexpr std::size_t initialCapacity = 4096;

    void
    push(char ph, const char *cat, const char *name, Tick ts,
         Duration dur, std::uint64_t value, std::uint32_t tid)
    {
        if (!enabled_)
            return;
        TraceEvent e;
        e.ts = ts;
        e.dur = dur;
        e.value = value;
        e.seq = seq_++;
        e.cat = cat;
        e.name = name;
        e.tid = tid;
        e.ph = ph;
        events_.push_back(e);
    }

    std::vector<TraceEvent> events_;
    std::uint64_t seq_ = 0;
    std::uint64_t asyncIds_ = 0;
    bool enabled_ = false;
};

} // namespace hopp::obs

