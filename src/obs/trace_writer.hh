/**
 * @file
 * Serialization of a Tracer's event buffer into Chrome trace_event
 * JSON (Perfetto / chrome://tracing) or compact JSONL (one event
 * object per line, no wrapper — for line-oriented tooling).
 *
 * Timestamps: the trace_event format counts microseconds; ticks are
 * nanoseconds. The writer renders `ts`/`dur` as `<us>.<ns%1000>` with
 * pure integer arithmetic, so output is byte-deterministic and
 * sub-microsecond precision survives the unit change.
 */

#pragma once

#include <string>

#include "obs/tracer.hh"

namespace hopp::obs
{

/**
 * Render the full Chrome trace: a JSON object whose "traceEvents"
 * array holds every event sorted by (ts, seq).
 */
std::string toChromeJson(const Tracer &tracer);

/**
 * Render compact JSONL: the same event objects, one per line, sorted
 * identically, without the wrapping object.
 */
std::string toJsonl(const Tracer &tracer);

/**
 * Write @p content to @p path (truncating).
 * @return false (with a message on stderr) when the file cannot be
 *         opened or written.
 */
bool writeFile(const std::string &path, const std::string &content);

} // namespace hopp::obs

