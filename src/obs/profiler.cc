/**
 * @file
 * Self-profiler report side: enable/collect/reset and the
 * `hopp-profile-v1` JSON renderer. Only report-time consumers
 * (runner, tools, bench) link this TU; the record path lives entirely
 * in profiler.hh so instrumented layers stay link-independent.
 */

#include "obs/profiler.hh"

#include <cstdio>

namespace hopp::obs::prof
{

const char *
zoneName(Zone z)
{
    switch (z) {
    case Zone::Run:
        return "run";
    case Zone::AccessPump:
        return "access_pump";
    case Zone::EventDispatch:
        return "event_dispatch";
    case Zone::WorkloadGen:
        return "workload_gen";
    case Zone::VmsAccess:
        return "vms_access";
    case Zone::RadixWalk:
        return "radix_walk";
    case Zone::FaultPath:
        return "fault_path";
    case Zone::Llc:
        return "llc";
    case Zone::Reclaim:
        return "reclaim";
    case Zone::LinkTransfer:
        return "link_transfer";
    case Zone::HoppDrain:
        return "hopp_drain";
    case Zone::InvariantCheck:
        return "invariant_check";
    case Zone::MetricsSample:
        return "metrics_sample";
    case Zone::MachineBuild:
        return "machine_build";
    case Zone::Count:
        break;
    }
    return "unknown";
}

void
enable(bool on)
{
    detail::g_enabled = on;
}

Report
collect()
{
    Report r;
    detail::Registry &reg = detail::registry();
    // Report-side registry access, not simulation.
    // hopp-lint: allow(thread-primitive)
    const std::lock_guard<std::mutex> lock(reg.mu);
    for (unsigned z = 0; z < zoneCount; ++z)
        r.zones[z] = reg.retired[z];
    for (const ZoneTable *t : reg.live) {
        const std::array<ZoneSlot, zoneCount> &slots = t->slots();
        for (unsigned z = 0; z < zoneCount; ++z) {
            r.zones[z].totalNs += slots[z].totalNs;
            r.zones[z].childNs += slots[z].childNs;
            r.zones[z].count += slots[z].count;
        }
    }
    return r;
}

void
reset()
{
    detail::Registry &reg = detail::registry();
    // Report-side registry access, not simulation.
    // hopp-lint: allow(thread-primitive)
    const std::lock_guard<std::mutex> lock(reg.mu);
    for (ZoneSlot &s : reg.retired)
        s = ZoneSlot{};
    for (ZoneTable *t : reg.live)
        t->clearCounts();
}

std::uint64_t
Report::attributedNs() const
{
    std::uint64_t sum = 0;
    for (unsigned z = 0; z < zoneCount; ++z) {
        if (static_cast<Zone>(z) == Zone::Run)
            continue;
        sum += selfNs(static_cast<Zone>(z));
    }
    return sum;
}

double
Report::attributedFraction() const
{
    const std::uint64_t wall = wallNs();
    if (wall == 0)
        return 0.0;
    return static_cast<double>(attributedNs()) /
           static_cast<double>(wall);
}

std::string
toJson(const Report &r)
{
    std::string out;
    out.reserve(2048);
    char buf[256];
    auto append = [&out, &buf](const char *fmt, auto... args) {
        std::snprintf(buf, sizeof buf, fmt, args...);
        out += buf;
    };
    out += "{\n  \"schema\": \"hopp-profile-v1\",\n";
    append("  \"wall_ns\": %llu,\n",
           static_cast<unsigned long long>(r.wallNs()));
    append("  \"attributed_ns\": %llu,\n",
           static_cast<unsigned long long>(r.attributedNs()));
    append("  \"attributed_fraction\": %.6f,\n", r.attributedFraction());
    out += "  \"zones\": [\n";
    for (unsigned z = 0; z < zoneCount; ++z) {
        const Zone zone = static_cast<Zone>(z);
        const ZoneSlot &s = r.zones[z];
        append("    {\"zone\": \"%s\", \"total_ns\": %llu, "
               "\"self_ns\": %llu, \"count\": %llu}%s\n",
               zoneName(zone), static_cast<unsigned long long>(s.totalNs),
               static_cast<unsigned long long>(r.selfNs(zone)),
               static_cast<unsigned long long>(s.count),
               z + 1 < zoneCount ? "," : "");
    }
    out += "  ]\n}\n";
    return out;
}

} // namespace hopp::obs::prof
