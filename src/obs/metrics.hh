/**
 * @file
 * Periodic time-series metrics: a MetricsSampler scheduled on the sim
 * EventQueue snapshots registered gauges (resident pages, LRU
 * lengths, swapcache size, RPT occupancy, link backlog, outstanding
 * prefetches, ...) every `period` ns of simulated time into
 * in-memory series, exported as CSV.
 *
 * The sampler only reschedules itself while the machine still has work
 * — other events pending, or the liveness callback reporting running
 * application threads (threads are pumped by the runner, not queued as
 * events) — so it never keeps an otherwise-drained event queue alive;
 * the machine takes one final snapshot after the run for the end state.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "obs/tracer.hh"
#include "sim/event_queue.hh"

namespace hopp::obs
{

/** One registered gauge: a name and a pull function. */
struct Gauge
{
    std::string name;
    std::function<double()> read;
};

/**
 * Samples all registered gauges on a fixed simulated-time period.
 */
class MetricsSampler
{
  public:
    /** @param period sampling interval in simulated ns (> 0). */
    MetricsSampler(sim::EventQueue &eq, Duration period);

    /** Register a gauge; call before start(). */
    void addGauge(std::string name, std::function<double()> read);

    /**
     * Optionally mirror every sample as trace counter events (name
     * must outlive the tracer; the sampler keeps its gauge names
     * alive, so this just wires the handle).
     */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /**
     * Tell the sampler how to ask whether the machine still has work
     * beyond the event queue. Application threads are pumped by the
     * runner's two-level scheduler rather than queued as events, so an
     * empty queue alone no longer means the run is over; without a
     * callback the sampler falls back to the queue-only test.
     */
    void setLiveness(std::function<bool()> live) { live_ = std::move(live); }

    /** Schedule the first sample one period from now. */
    void start();

    /** Take one snapshot immediately (used for the final state). */
    void sampleNow();

    /** Sample timestamps, one per row. */
    const std::vector<Tick> &times() const { return times_; }

    /** Per-gauge series; series()[g][row] pairs with times()[row]. */
    const std::vector<std::vector<double>> &
    series() const
    {
        return series_;
    }

    /** Registered gauges (names give the CSV column order). */
    const std::vector<Gauge> &gauges() const { return gauges_; }

    /** Render the series as CSV: `tick_ns,<gauge>,...` + one row/sample. */
    std::string toCsv() const;

  private:
    void fire();

    sim::EventQueue &eq_;
    Duration period_;
    std::function<bool()> live_;
    Tracer *tracer_ = nullptr;
    std::vector<Gauge> gauges_;
    std::vector<Tick> times_;
    std::vector<std::vector<double>> series_;
    bool started_ = false;
};

} // namespace hopp::obs

