/**
 * @file
 * Trace-driven replay (ROADMAP item 4): drive the MC-side HoPP
 * pipeline straight from a recorded (or imported) trace — no workload
 * generation, no VMS, no page walk — so one captured scenario can be
 * swept against many policy configurations at memory speed.
 *
 * Fidelity contract (DESIGN.md §15): for the stats the pipeline owns
 * (HPD, RPT cache, ring, STT, trainer predictions, unmapped drops) a
 * replayed trace reproduces the recording run byte for byte — the
 * pipeline is the same class, fed the same (access, PTE, tick) stream
 * with the same event/record interleaving rule as Machine::pump.
 * Prefetch *execution* has no VMS behind it here, so the engine
 * instead keeps an oracle ledger: what the trainer asked for, and
 * whether a later demand read in the trace touched the predicted page
 * (approximate accuracy/coverage, standard stats JSON).
 *
 * Policy fan-out: an engine built from several ReplayConfigs that
 * share the hardware half (HPD geometry/threshold, RPT cache,
 * channels, ring, trainer delay) replays all of them in ONE pass —
 * the decode and the per-access HPD/RPT frontend are paid once, and
 * each hot page fans out to every cell's trainer
 * (HotPagePipeline::addReplayBackend). Per cell, both the MC-side
 * stats document and the oracle ledger are byte-identical to a solo
 * replay of that cell; the per-record cost of an extra cell is zero
 * (cells only pay per hot page and per prediction). This is what
 * makes a software-policy sweep run at memory speed rather than at
 * simulation speed.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hopp/pipeline.hh"
#include "trace/trace_file.hh"

namespace hopp::runner
{

/** Replay-run configuration: the pipeline plus the oracle model. */
struct ReplayConfig
{
    /** The HoPP configuration under evaluation. */
    core::HoppConfig hopp;

    /**
     * Modeled prefetch arrival latency: a prediction counts as timely
     * only for demand reads at least this much later (a stand-in for
     * the fabric transfer the live ExecEngine would have issued).
     */
    Duration arrivalDelay = 8'300;

    /** A prediction unused for this long no longer counts as a hit. */
    Duration useWindow = 5'000'000;
};

/** Outcome of one replay. */
struct ReplayResult
{
    std::uint64_t records = 0;
    std::uint64_t mcAccesses = 0;
    std::uint64_t pteEvents = 0;
    Tick lastTick;

    // Oracle prefetch ledger (see file comment).
    std::uint64_t requested = 0; //!< pages the trainer asked for
    std::uint64_t used = 0;      //!< demanded within the use window
    std::uint64_t late = 0;      //!< demanded before modeled arrival
    std::uint64_t unused = 0;    //!< stale or never demanded
    std::uint64_t demandPages = 0;  //!< distinct mapped pages read
    std::uint64_t coveredPages = 0; //!< first read preceded by request

    double
    accuracy() const
    {
        return requested ? static_cast<double>(used) /
                               static_cast<double>(requested)
                         : 0.0;
    }

    double
    coverage() const
    {
        return demandPages ? static_cast<double>(coveredPages) /
                                 static_cast<double>(demandPages)
                           : 0.0;
    }
};

/** Fan-out width limit (the per-page pending mask is 32 bits). */
inline constexpr std::size_t maxReplayCells = 32;

/**
 * One replay run: owns its own event queue, a traffic-accounting DRAM
 * shell, and the HotPagePipeline under test; with several cells, one
 * shared frontend and a software backend + oracle ledger per cell.
 */
class ReplayEngine
{
  public:
    ReplayEngine() : ReplayEngine(ReplayConfig{}) {}
    explicit ReplayEngine(const ReplayConfig &cfg);

    /**
     * Fan-out constructor: every cell must share the hardware half of
     * the configuration with cells[0] (asserted); the software half
     * (tierMask, batch, markov, stt, policy, oracle windows) may vary
     * freely.
     */
    explicit ReplayEngine(const std::vector<ReplayConfig> &cells);

    /**
     * Replay every record @p reader yields. May be called once per
     * engine. @return the reader's final status: Ok means the whole
     * trace was consumed.
     */
    trace::TraceIoStatus run(trace::TraceReader &reader);

    /** The pipeline under test (for stats extraction). */
    core::HotPagePipeline &pipeline() { return pipeline_; }

    /** HoPP hardware DRAM traffic accounting (ring + RPT). */
    mem::Dram &dram() { return dram_; }

    /** Number of policy cells sharing the frontend. */
    std::size_t cells() const { return cells_.size(); }

    /** Policy engine state after the run. */
    core::PolicyEngine &policy(std::size_t cell = 0)
    {
        return cells_.at(cell)->policy;
    }

    /** Replay counters and oracle metrics for one cell. */
    const ReplayResult &result(std::size_t cell = 0) const
    {
        return cells_.at(cell)->result;
    }

    /**
     * The MC-side fidelity-contract document for one cell —
     * byte-identical to `hopp-run --mc-stats-json` for the run that
     * recorded the trace (DESIGN.md §15), and to a solo replay of the
     * cell's configuration when fanned out.
     */
    std::string mcStatsJson(std::size_t cell = 0);

    /** The oracle accuracy/coverage block as one JSON object. */
    std::string oracleJson(std::size_t cell = 0) const;

  private:
    /** The trainer requests of one cell land here. */
    struct CellSink : core::PrefetchSink
    {
        void request(Pid pid, Vpn vpn, std::uint64_t stream_id,
                     core::Tier tier, Tick now) override;
        unsigned requestBatch(Pid pid, Vpn vpn, unsigned count,
                              std::uint64_t stream_id, core::Tier tier,
                              Tick now) override;
        std::size_t outstanding() const override;

        ReplayEngine *engine = nullptr;
        unsigned cell = 0;
    };

    /** Per-cell state: configuration, policy, sink, ledger, result. */
    struct Cell
    {
        explicit Cell(const ReplayConfig &c)
            : cfg(c), policy(c.hopp.policy)
        {
        }

        ReplayConfig cfg;
        core::PolicyEngine policy;
        CellSink sink;
        ReplayResult result;
        /// pageKey -> modeled arrival tick of an un-demanded
        /// prediction (this cell's half of the oracle ledger).
        FlatU64Map<Tick> outstanding;
    };

    /**
     * Shared per-page oracle state: which cells have a pending
     * prediction (so a demand read probes only flagged cells) and
     * whether the page already counted toward demandPages.
     */
    struct PageOracle
    {
        std::uint32_t pendingMask = 0;
        bool seen = false;
    };

    void dispatch(const trace::ReplayRecord &r);
    void oracleRequest(unsigned cell, Pid pid, Vpn vpn, Tick now);
    void oracleDemand(Pid pid, Vpn vpn, Tick now);

    sim::EventQueue eq_;
    /// Traffic accounting only — no frame is ever allocated from it.
    mem::Dram dram_;
    std::vector<std::unique_ptr<Cell>> cells_;
    core::HotPagePipeline pipeline_;

    // Stream-level counters (identical for every cell; copied into
    // each cell's result when the run finishes).
    std::uint64_t records_ = 0;
    std::uint64_t mcAccesses_ = 0;
    std::uint64_t pteEvents_ = 0;
    std::uint64_t demandPages_ = 0;
    Tick lastTick_;

    /// ppn -> pageKey(pid, vpn) shadow of the replayed mappings; the
    /// oracle uses it (not the lazily written-back Rpt) to resolve
    /// demand reads.
    FlatU64Map<std::uint64_t> shadow_;
    /// pageKey -> shared oracle state (one probe per demand read
    /// regardless of cell count).
    FlatU64Map<PageOracle> pages_;
    bool ran_ = false;
};

} // namespace hopp::runner
