/**
 * @file
 * Machine assembly: wires DRAM, LLC, memory controller, VMS, RDMA
 * fabric, remote node, the system-under-test's prefetcher(s) and
 * HoPP's hardware/software into one event-driven simulation, runs the
 * configured workloads as per-thread actors, and collects the metrics
 * every benchmark reports.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "check/invariants.hh"
#include "hopp/hopp_system.hh"
#include "mem/llc.hh"
#include "net/rdma.hh"
#include "obs/latency.hh"
#include "obs/metrics.hh"
#include "obs/tracer.hh"
#include "prefetch/depthn.hh"
#include "prefetch/leap.hh"
#include "prefetch/readahead.hh"
#include "prefetch/stats.hh"
#include "prefetch/vma.hh"
#include "remote/swap_backend.hh"
#include "runner/trace_recorder.hh"
#include "sim/event_queue.hh"
#include "trace/trace_file.hh"
#include "vm/vms.hh"
#include "workloads/apps.hh"

namespace hopp::runner
{

/** Which disaggregated-memory system drives the machine. */
enum class SystemKind
{
    Local,      //!< everything fits in local DRAM (baseline CT_local)
    NoPrefetch, //!< Fastswap data path without prefetching (Fig. 17)
    Fastswap,   //!< swap-offset readahead
    Leap,       //!< majority-based prefetching
    Vma,        //!< VMA (virtual-address) readahead
    DepthN,     //!< fixed-depth early PTE injection
    Hopp,       //!< HoPP engine alongside Fastswap readahead (§V)
    HoppOnly,   //!< HoPP engine with no fault-driven prefetcher
};

/** Printable system name. */
const char *systemName(SystemKind k);

/** Full machine configuration. */
struct MachineConfig
{
    SystemKind system = SystemKind::Fastswap;

    /** cgroup limit as a fraction of each app's footprint (§VI-B). */
    double localMemRatio = 0.5;

    /** Depth for SystemKind::DepthN. */
    unsigned depth = 32;

    mem::LlcConfig llc{/*capacityBytes=*/512 << 10, /*ways=*/16};
    net::LinkConfig link;
    vm::VmsConfig vms;
    core::HoppConfig hopp;
    prefetch::ReadaheadConfig readahead;
    prefetch::LeapConfig leap;
    prefetch::VmaConfig vma;

    /** Extra uncharged DRAM frames beyond the cgroup limits. */
    std::uint64_t dramSlackFrames = 512;

    /**
     * Accesses one thread buffers per block: the step loop refills the
     * per-thread block with one AccessGenerator::nextBatch call per
     * `quantum` accesses. Purely a host-side amortization knob — the
     * yield checks stay per-access regardless (see DESIGN.md §14).
     */
    unsigned quantum = 512;

    /**
     * Batched access pump: fill a per-thread block with one
     * AccessGenerator::nextBatch call and drain it through
     * Vms::accessBatch. Host-side execution strategy only — batch on
     * and off produce byte-identical simulation results (the
     * --no-batch cross-check test relies on that); turn it off to
     * bisect a suspected batching bug at scalar speed.
     */
    bool batch = true;

    /**
     * Per-thread software TLB caching VPN -> PageInfo* for resident
     * pages (vm/tlb.hh). Host-side accelerator only: results are
     * bit-identical with it off (the cross-check test relies on that);
     * turn it off to isolate a suspected translation bug.
     */
    bool tlb = true;

    /**
     * Flight recorder: record structured trace events across every
     * layer (fault spans, prefetch issue->fill, reclaim passes, link
     * transfers, HoPP drains, sampled counters). Off by default; when
     * off, components hold a null tracer and the instrumentation is a
     * branch on a cold pointer.
     */
    bool trace = false;

    /**
     * Periodic metrics sampling interval in simulated ns; 0 disables.
     * When enabled, a MetricsSampler snapshots the registered gauges
     * (resident frames, swapcache, in-flight prefetches, LRU lengths,
     * remote slots, RPT occupancy, queue depth, HoPP outstanding)
     * every period; export with Machine::metricsSampler()->toCsv().
     */
    Duration metricsPeriod = 0;

    /**
     * Debug hook: run the src/check structural validators (event-queue
     * monotonicity, VMS cross-consistency, LLC occupancy, RPT/STT
     * accounting) every time this many further events have executed,
     * plus once after the run drains; any violation panics with the
     * full list. 0 disables. Costs a full state walk per pass, so keep
     * it for debugging and CI, not for sweeps.
     */
    std::uint64_t checkInterval = 0;

    /**
     * When non-empty, record the MC-side input stream (initial
     * page-table snapshot, every MC access, every PTE event) to this
     * path in the blocked replay-trace format, for later offline
     * policy sweeps with hopp-replay (DESIGN.md §15).
     */
    std::string recordTracePath;

    /**
     * Test hook for the forensics pipeline: once this many events
     * have executed, deliberately corrupt LLC occupancy accounting so
     * the next checkInterval pass fails and the black-box ring dumps
     * through the panic path. 0 (the default) disables; requires
     * checkInterval > 0 to have any effect. Never set outside tests —
     * it exists so "does a dying run leave a usable dump behind?" is
     * testable end to end (hopp-run --inject-corruption).
     */
    std::uint64_t corruptAfterEvents = 0;
};

/** Per-application outcome. */
struct AppResult
{
    Pid pid;
    std::string name;
    Tick completion;           //!< slowest thread's finish time
    std::uint64_t accesses = 0;
};

/** Everything a benchmark needs from one run. */
struct RunResult
{
    std::vector<AppResult> apps;
    Tick makespan;

    // §VI-A metrics (all origins combined).
    double accuracy = 0.0;
    double coverage = 0.0;
    double dramHitCoverage = 0.0;

    /**
     * Accuracy of the *system's own* prefetcher: the HoPP engine's
     * aggregate tier accuracy on Hopp machines (what Fig. 10/13 plot
     * for HoPP), equal to `accuracy` elsewhere.
     */
    double systemAccuracy = 0.0;

    vm::VmsStats vms;
    std::uint64_t demandRemote = 0;
    std::uint64_t prefetchReads = 0;
    std::uint64_t writebacks = 0;

    /** Completion of one app by name (fatal when absent). */
    Tick completionOf(const std::string &name) const;
};

/**
 * One simulated machine running one experiment.
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Add an application (becomes pid 1, 2, ...). */
    void addWorkload(const workloads::Workload &w);

    /**
     * Construct all components without running, so callers can attach
     * extra observers (e.g. an HMTT tap on the memory controller)
     * before the first application event. Idempotent; run() calls it.
     */
    void prepare();

    /** Build, run to completion, and collect results. */
    RunResult run();

    // Component access after run() for detailed benches.
    vm::Vms &vms() { return *vms_; }
    prefetch::PrefetchStats &prefetchStats() { return stats_; }
    remote::SwapBackend &backend() { return *backend_; }
    mem::Dram &dram() { return *dram_; }
    mem::Llc &llc() { return *llc_; }
    mem::MemCtrl &memCtrl() { return *mc_; }
    net::RdmaFabric &fabric() { return *fabric_; }
    sim::EventQueue &eventQueue() { return eq_; }

    /** The HoPP system (nullptr unless system is Hopp/HoppOnly). */
    core::HoppSystem *hoppSystem() { return hoppSystem_.get(); }

    /** The flight recorder (empty unless cfg.trace). */
    obs::Tracer &tracer() { return tracer_; }

    /** The metrics sampler (nullptr unless cfg.metricsPeriod > 0). */
    obs::MetricsSampler *metricsSampler() { return metrics_.get(); }

    /** The trace writer (nullptr unless cfg.recordTracePath is set). */
    trace::TraceWriter *traceWriter() { return traceWriter_.get(); }

    /** False when recording was requested but writing/closing failed. */
    bool traceRecordOk() const { return traceRecordOk_; }

    /** Fault-path latency histograms (always collected). */
    obs::FaultLatency &faultLatency() { return latency_; }

    /**
     * Run every applicable invariant validator once and return the
     * accumulated report (empty when the machine state is consistent).
     * The periodic checkInterval hook is this plus Report::enforce().
     */
    check::Report checkInvariants();

    /**
     * Write this thread's black-box ring (the last ~1024 significant
     * events of the current run) as JSONL to @p path. The same dump
     * fires automatically when an invariant failure or hopp_assert
     * panics; this entry point is for post-run inspection.
     * @return false when the file cannot be written.
     */
    bool dumpForensics(const std::string &path) const;

  private:
    struct Thread
    {
        Pid pid;
        workloads::GeneratorPtr gen;
        Tick now;
        Tick completion;
        std::uint64_t accesses = 0;
        bool done = false;
        /// Per-thread translation cache; registered as a PTE hook so
        /// eviction / teardown / injection-revoke shoot it down. Lives
        /// here (threads are unique_ptr-stable) so its address can sit
        /// in the VMS hook list for the machine's lifetime.
        vm::Tlb tlb;
        /// Access block the batched pump fills and drains; sized to
        /// cfg_.quantum once in build() so the steady-state loop never
        /// allocates.
        std::vector<workloads::Access> block;
        /// Drain cursor into block: [blockPos, blockLen) is buffered
        /// but not yet executed. A refill that comes back short marks
        /// end-of-stream (the nextBatch contract).
        std::size_t blockPos = 0;
        std::size_t blockLen = 0;
    };

    void build();

    /**
     * The run loop: a two-level scheduler. Application threads are NOT
     * events — the pump picks the thread with the smallest local time
     * and drains its access block until the runner-up horizon (the
     * next other thread or pending event) is reached, dispatching
     * queued events only when one is due no later than every thread.
     * Interleaving is therefore still globally time-ordered at access
     * granularity (identical yield points to the historical design
     * where each thread timeslice was an event), but the per-access
     * schedule/dispatch round trip through the event heap — one event
     * per access in the thread ping-pong steady state — is gone.
     *
     * The drain segment is fused into the loop body rather than split
     * into a step() helper: two equally-paced threads yield to each
     * other after every access, so per-segment machinery is per-access
     * machinery. Threads are addressed by index, never by a reference
     * held across segments, so container growth between runs can never
     * leave a dangling Thread reference (Thread objects themselves are
     * unique_ptr-stable for the TLB hook registration).
     */
    void pump();
    void maybeCheck();

    MachineConfig cfg_;
    std::vector<workloads::Workload> apps_;

    sim::EventQueue eq_;
    std::unique_ptr<mem::Dram> dram_;
    std::unique_ptr<mem::MemCtrl> mc_;
    std::unique_ptr<mem::Llc> llc_;
    std::unique_ptr<net::RdmaFabric> fabric_;
    std::unique_ptr<remote::RemoteNode> node_;
    std::unique_ptr<remote::SwapBackend> backend_;
    std::unique_ptr<vm::Vms> vms_;
    std::unique_ptr<prefetch::Prefetcher> prefetcher_;
    std::unique_ptr<core::HoppSystem> hoppSystem_;
    prefetch::PrefetchStats stats_;
    obs::Tracer tracer_;
    std::unique_ptr<trace::TraceWriter> traceWriter_;
    std::unique_ptr<TraceRecorder> recorder_;
    bool traceRecordOk_ = true;
    std::unique_ptr<obs::MetricsSampler> metrics_;
    obs::FaultLatency latency_;
    std::vector<std::unique_ptr<Thread>> threads_;
    bool built_ = false;
    bool corrupted_ = false; //!< corruptAfterEvents already fired
    check::EventQueueWatch eqWatch_;
    std::uint64_t lastCheckAt_ = 0;
};

/**
 * Convenience: run one workload under one system and memory ratio.
 */
RunResult runOne(const std::string &workload, SystemKind system,
                 double local_ratio,
                 const workloads::WorkloadScale &scale = {},
                 const MachineConfig &base = {});

/** Normalized performance CT_local / CT_system for one workload. */
double normalizedPerformance(Tick ct_local, Tick ct_system);

} // namespace hopp::runner

