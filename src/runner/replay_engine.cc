#include "runner/replay_engine.hh"

#include <bit>
#include <cstdio>
#include <iterator>

#include "vm/page.hh"

namespace hopp::runner
{

namespace
{

/**
 * The hardware half of a HoppConfig — everything that shapes the
 * shared frontend (and the drain schedule). Cells of one fan-out must
 * agree on all of it, or the "probe once, fan out hot pages" premise
 * breaks.
 */
bool
sameHardware(const core::HoppConfig &a, const core::HoppConfig &b)
{
    return a.hpd.sets == b.hpd.sets && a.hpd.ways == b.hpd.ways &&
           a.hpd.threshold == b.hpd.threshold &&
           a.rptCache.capacityBytes == b.rptCache.capacityBytes &&
           a.rptCache.ways == b.rptCache.ways &&
           a.rptCache.entryBytes == b.rptCache.entryBytes &&
           a.rptCache.missFillBytes == b.rptCache.missFillBytes &&
           a.channels == b.channels &&
           a.channelInterleaved == b.channelInterleaved &&
           a.scaleThresholdWithChannels ==
               b.scaleThresholdWithChannels &&
           a.ringCapacity == b.ringCapacity &&
           a.trainerDelay == b.trainerDelay &&
           a.evictionAdvisor == b.evictionAdvisor &&
           a.warmWindow == b.warmWindow &&
           a.warmEntriesCap == b.warmEntriesCap;
}

} // namespace

void
ReplayEngine::CellSink::request(Pid pid, Vpn vpn, std::uint64_t,
                                core::Tier, Tick now)
{
    engine->oracleRequest(cell, pid, vpn, now);
}

unsigned
ReplayEngine::CellSink::requestBatch(Pid pid, Vpn vpn, unsigned count,
                                     std::uint64_t, core::Tier,
                                     Tick now)
{
    for (unsigned i = 0; i < count; ++i)
        engine->oracleRequest(cell, pid, vpn + i, now);
    return count;
}

std::size_t
ReplayEngine::CellSink::outstanding() const
{
    return engine->cells_[cell]->outstanding.size();
}

ReplayEngine::ReplayEngine(const ReplayConfig &cfg)
    : ReplayEngine(std::vector<ReplayConfig>{cfg})
{
}

ReplayEngine::ReplayEngine(const std::vector<ReplayConfig> &cells)
    : dram_(/*frames=*/1),
      cells_([&cells] {
          hopp_assert(!cells.empty(), "need at least one replay cell");
          hopp_assert(cells.size() <= maxReplayCells,
                      "too many replay cells for one fan-out");
          std::vector<std::unique_ptr<Cell>> built;
          built.reserve(cells.size());
          for (const ReplayConfig &c : cells)
              built.push_back(std::make_unique<Cell>(c));
          return built;
      }()),
      pipeline_(eq_, dram_, cells_[0]->policy, cells_[0]->sink,
                cells_[0]->cfg.hopp)
{
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        Cell &cell = *cells_[i];
        hopp_assert(
            sameHardware(cells_[0]->cfg.hopp, cell.cfg.hopp),
            "fan-out cells must share the hardware configuration");
        cell.sink.engine = this;
        cell.sink.cell = static_cast<unsigned>(i);
        // Sized for the common case so the replay loop's oracle
        // updates are flat probes; growth past this is handled (and
        // allowed) in FlatU64Map itself.
        cell.outstanding.reserve(1 << 12);
        if (i != 0)
            pipeline_.addReplayBackend(cell.policy, cell.sink,
                                       cell.cfg.hopp);
    }
    shadow_.reserve(1 << 16);
    pages_.reserve(1 << 16);
}

void
ReplayEngine::oracleRequest(unsigned cell, Pid pid, Vpn vpn, Tick now)
{
    Cell &c = *cells_[cell];
    ++c.result.requested;
    std::uint64_t key = vm::pageKey(pid, vpn);
    // Re-requesting a page whose prediction was never consumed means
    // the earlier prediction did not get used; charge it now so the
    // ledger cannot double-count one demand against two requests.
    Tick &ready = c.outstanding[key];
    if (ready != Tick{})
        ++c.result.unused;
    ready = now + c.cfg.arrivalDelay;
    pages_[key].pendingMask |= 1u << cell;
}

void
ReplayEngine::oracleDemand(Pid pid, Vpn vpn, Tick now)
{
    std::uint64_t key = vm::pageKey(pid, vpn);
    PageOracle &po = pages_[key];
    std::uint32_t pending = po.pendingMask;
    if (pending != 0) {
        po.pendingMask = 0;
        // Only cells with a prediction outstanding on this page pay
        // anything here; per record, cells that did not predict it
        // cost nothing — that is the fan-out's scaling property.
        for (std::uint32_t m = pending; m != 0; m &= m - 1) {
            Cell &c = *cells_[std::countr_zero(m)];
            Tick *ready = c.outstanding.find(key);
            if (now < *ready)
                ++c.result.late;
            else if (now - *ready <= c.cfg.useWindow)
                ++c.result.used;
            else
                ++c.result.unused;
            c.outstanding.erase(key);
        }
    }
    if (!po.seen) {
        po.seen = true;
        ++demandPages_;
        for (std::uint32_t m = pending; m != 0; m &= m - 1)
            ++cells_[std::countr_zero(m)]->result.coveredPages;
    }
}

void
ReplayEngine::dispatch(const trace::ReplayRecord &r)
{
    switch (r.kind) {
      case trace::ReplayKind::Mc: {
        ++mcAccesses_;
        if (!r.isWrite) {
            const std::uint64_t *key = shadow_.find(pageOf(r.pa).raw()); // hopp-lint: allow(raw) map key
            if (key)
                oracleDemand(vm::keyPid(*key), vm::keyVpn(*key),
                             r.tick);
        }
        pipeline_.onMcAccess(r.pa, r.isWrite, r.tick);
        break;
      }
      case trace::ReplayKind::PteInit:
        // The recorder's initial page-table snapshot: build the RPT
        // directly, exactly as HoppSystem::start() does — NOT through
        // onPteSet, which would inflate RPT-cache update counters the
        // live run never charged.
        ++pteEvents_;
        pipeline_.rpt().store(
            r.ppn, core::RptEntry{r.pid, r.vpn, r.shared,
                                  static_cast<std::uint8_t>(
                                      r.huge ? 1 : 0)});
        shadow_[r.ppn.raw()] = vm::pageKey(r.pid, r.vpn); // hopp-lint: allow(raw) map key
        break;
      case trace::ReplayKind::PteSet:
        ++pteEvents_;
        pipeline_.onPteSet(r.pid, r.vpn, r.ppn, r.shared, r.huge,
                           r.tick);
        shadow_[r.ppn.raw()] = vm::pageKey(r.pid, r.vpn); // hopp-lint: allow(raw) map key
        break;
      case trace::ReplayKind::PteClear:
        ++pteEvents_;
        pipeline_.onPteClear(r.pid, r.vpn, r.ppn, r.tick);
        shadow_.erase(r.ppn.raw()); // hopp-lint: allow(raw) map key
        break;
    }
    ++records_;
    lastTick_ = r.tick;
}

trace::TraceIoStatus
ReplayEngine::run(trace::TraceReader &reader)
{
    hopp_assert(!ran_, "ReplayEngine::run may only be called once");
    ran_ = true;
    // Batched decode mirroring AccessGenerator::nextBatch: one refill
    // amortizes the reader call over a block of records.
    trace::ReplayRecord block[512];
    std::size_t n;
    while ((n = reader.nextBatch(block, std::size(block))) != 0) {
        for (std::size_t i = 0; i < n; ++i) {
            const trace::ReplayRecord &r = block[i];
            // The live pump dispatches a due event before the access
            // when nextTime() <= the access tick (event-first on
            // ties); replay must interleave identically or trainer
            // drains shift relative to the access stream.
            while (eq_.nextTime() <= r.tick)
                eq_.runOne();
            dispatch(r);
        }
    }
    // End of trace: drain the queue (the live run's pump exits only
    // when no events remain).
    while (eq_.runOne()) {
    }
    for (auto &cell : cells_) {
        ReplayResult &res = cell->result;
        res.records = records_;
        res.mcAccesses = mcAccesses_;
        res.pteEvents = pteEvents_;
        res.lastTick = lastTick_;
        res.demandPages = demandPages_;
        // Whatever is still outstanding was never consumed by a
        // demand.
        res.unused += cell->outstanding.size();
    }
    return reader.status();
}

std::string
ReplayEngine::mcStatsJson(std::size_t cell)
{
    return core::mcSideStatsJson(pipeline_, cell);
}

std::string
ReplayEngine::oracleJson(std::size_t cell) const
{
    const ReplayResult &result = cells_.at(cell)->result;
    std::string out;
    char buf[128];
    auto put = [&](const char *key, std::uint64_t v) {
        std::snprintf(buf, sizeof(buf), "  \"%s\": %llu,\n", key,
                      static_cast<unsigned long long>(v));
        out += buf;
    };
    out += "{\n";
    put("replay_records", result.records);
    put("replay_mc_accesses", result.mcAccesses);
    put("replay_pte_events", result.pteEvents);
    put("replay_last_tick", result.lastTick.raw()); // hopp-lint: allow(raw) stats boundary
    put("oracle_requested", result.requested);
    put("oracle_used", result.used);
    put("oracle_late", result.late);
    put("oracle_unused", result.unused);
    put("oracle_demand_pages", result.demandPages);
    put("oracle_covered_pages", result.coveredPages);
    std::snprintf(buf, sizeof(buf),
                  "  \"oracle_accuracy\": %.17g,\n"
                  "  \"oracle_coverage\": %.17g\n",
                  result.accuracy(), result.coverage());
    out += buf;
    out += "}\n";
    return out;
}

} // namespace hopp::runner
