#include "runner/stats_report.hh"

#include <cstdio>

#include "runner/machine.hh"

namespace hopp::runner
{

namespace
{

stats::StatSet
llcStats(mem::Llc &llc)
{
    stats::StatSet s("llc");
    s.record("hits", static_cast<double>(llc.hits()), "LLC hits");
    s.record("misses", static_cast<double>(llc.misses()),
             "LLC misses (reach the MC)");
    double total =
        static_cast<double>(llc.hits() + llc.misses());
    s.record("miss_rate",
             total > 0 ? static_cast<double>(llc.misses()) / total : 0,
             "miss fraction");
    s.addResetter([&llc] { llc.resetStats(); });
    return s;
}

stats::StatSet
mcStats(mem::MemCtrl &mc)
{
    stats::StatSet s("mc");
    s.record("reads", static_cast<double>(mc.reads()),
             "demand read transactions");
    s.record("writes", static_cast<double>(mc.writes()),
             "writeback transactions");
    s.addResetter([&mc] { mc.resetStats(); });
    return s;
}

stats::StatSet
dramStats(mem::Dram &dram)
{
    using mem::TrafficSource;
    stats::StatSet s("dram");
    s.record("frames_total", static_cast<double>(dram.totalFrames()),
             "frames in the module");
    s.record("frames_used", static_cast<double>(dram.usedFrames()),
             "frames allocated at end of run");
    s.record("bytes_app_read",
             static_cast<double>(dram.traffic(TrafficSource::AppRead)),
             "demand LLC-miss read bytes");
    s.record("bytes_app_write",
             static_cast<double>(dram.traffic(TrafficSource::AppWrite)),
             "writeback bytes");
    s.record("bytes_page_dma",
             static_cast<double>(
                 dram.traffic(TrafficSource::PageTransfer)),
             "RDMA page DMA bytes");
    s.record("bytes_hot_page",
             static_cast<double>(
                 dram.traffic(TrafficSource::HotPageWrite)),
             "HPD hot-page record bytes (Table V)");
    s.record("bytes_rpt_query",
             static_cast<double>(dram.traffic(TrafficSource::RptQuery)),
             "RPT cache miss fill bytes (Table V)");
    s.record("bytes_rpt_update",
             static_cast<double>(
                 dram.traffic(TrafficSource::RptUpdate)),
             "RPT write-back bytes");
    s.addResetter([&dram] { dram.resetTraffic(); });
    return s;
}

stats::StatSet
vmsStats(vm::Vms &vms)
{
    const vm::VmsStats &v = vms.stats();
    stats::StatSet s("vms");
    s.record("accesses", static_cast<double>(v.accesses),
             "application memory accesses");
    s.record("faults", static_cast<double>(v.faults()),
             "all page faults");
    s.record("faults_cold", static_cast<double>(v.coldFaults),
             "first-touch zero-fill faults");
    s.record("faults_remote", static_cast<double>(v.remoteFaults),
             "demand RDMA page-ins (8.3-11.3 us path)");
    s.record("faults_swapcache_hit",
             static_cast<double>(v.swapCacheHits),
             "prefetch-hits (2.3 us path)");
    s.record("faults_inflight_wait",
             static_cast<double>(v.inflightWaits),
             "faults that waited on in-flight prefetches");
    s.record("injected_hits", static_cast<double>(v.injectedHits),
             "fault-free first touches of injected pages");
    s.record("adoptions", static_cast<double>(v.adoptions),
             "swapcache pages converted by PTE injection");
    s.record("evictions", static_cast<double>(v.evictions),
             "pages reclaimed");
    s.record("writebacks", static_cast<double>(v.writebacks),
             "dirty page-outs");
    s.record("reclaim_direct", static_cast<double>(v.directReclaims),
             "synchronous reclaims charged to the app");
    s.record("reclaim_kswapd", static_cast<double>(v.kswapdReclaims),
             "background reclaims");
    s.record("prefetches_dropped",
             static_cast<double>(v.prefetchesDropped),
             "completions that found their page already consumed");
    s.addResetter([&vms] { vms.resetStats(); });
    return s;
}

stats::StatSet
backendStats(remote::SwapBackend &backend)
{
    stats::StatSet s("remote");
    s.record("demand_reads", static_cast<double>(backend.demandReads()),
             "fault-path page reads");
    s.record("prefetch_reads",
             static_cast<double>(backend.prefetchReads()),
             "prefetch page reads");
    s.record("batch_reads", static_cast<double>(backend.batchReads()),
             "multi-page batched transfers");
    s.record("writebacks", static_cast<double>(backend.writebacks()),
             "page-out writes");
    s.addResetter([&backend] { backend.resetStats(); });
    return s;
}

stats::StatSet
prefetchStats(prefetch::PrefetchStats &ps)
{
    stats::StatSet s("prefetch");
    s.record("accuracy", ps.accuracy(), "hits / completed (SVI-A)");
    s.record("coverage", ps.coverage(),
             "hits / (demand remote + hits) (SVI-A)");
    s.record("coverage_dram_hit", ps.dramHitCoverage(),
             "fault-free share of coverage (Fig 21)");
    s.record("completed", static_cast<double>(ps.totalCompleted()),
             "prefetches landed");
    s.record("hits", static_cast<double>(ps.totalHits()),
             "prefetched pages used");
    s.addResetter([&ps] { ps.reset(); });
    return s;
}

stats::StatSet
hoppStats(core::HoppSystem &h)
{
    stats::StatSet s("hopp");
    auto hpd = h.hpdTotals();
    s.record("hpd.reads", static_cast<double>(hpd.reads),
             "MC read misses observed");
    s.record("hpd.hot_pages", static_cast<double>(hpd.hotPages),
             "hot pages extracted");
    s.record("hpd.hot_ratio", hpd.hotRatio(),
             "Table II ratio");
    s.record("hpd.suppressed", static_cast<double>(hpd.suppressed),
             "send-bit drops");
    s.record("rpt.hit_rate", h.rptCache().stats().hitRate(),
             "Table III hit rate (channel 0)");
    s.record("rpt.entries", static_cast<double>(h.rpt().size()),
             "live DRAM RPT entries");
    s.record("stt.streams_seeded",
             static_cast<double>(h.stt().stats().seeded),
             "stream generations");
    s.record("trainer.hot_pages",
             static_cast<double>(h.trainer().stats().hotPages),
             "records consumed");
    s.record("trainer.no_pattern",
             static_cast<double>(h.trainer().stats().noPattern),
             "full histories with no identified pattern");
    const char *tier_names[] = {"ssp", "lsp", "rsp", "mkv"};
    for (unsigned t = 0; t < core::tierCount; ++t) {
        const auto &ts =
            h.exec().tierStats(static_cast<core::Tier>(t));
        std::string p = std::string("tier.") + tier_names[t];
        s.record(p + ".issued", static_cast<double>(ts.issued),
                 "injections issued");
        s.record(p + ".hits", static_cast<double>(ts.hits),
                 "injections used");
        s.record(p + ".evicted_unused",
                 static_cast<double>(ts.evictedUnused),
                 "injections wasted");
    }
    s.record("exec.deduped", static_cast<double>(h.exec().deduped()),
             "requests dropped by dedup (SIII-F)");
    s.record("policy.feedbacks",
             static_cast<double>(h.policy().stats().feedbacks),
             "timeliness samples");
    s.record("policy.offset_up",
             static_cast<double>(h.policy().stats().increases),
             "offset increases");
    s.record("policy.offset_down",
             static_cast<double>(h.policy().stats().decreases),
             "offset decreases");
    s.record("ring.dropped",
             static_cast<double>(h.ring().dropped()),
             "hot pages lost to a full ring");
    s.record("advisor.warm_live",
             static_cast<double>(h.warmEntriesLive()),
             "live advisor hotness entries");
    s.record("advisor.warm_pruned",
             static_cast<double>(h.warmPruned()),
             "stale advisor entries aged out");
    s.record("advisor.prune_passes",
             static_cast<double>(h.warmPrunePasses()),
             "advisor prune passes");
    s.addResetter([&h] { h.resetStats(); });
    return s;
}

stats::StatSet
linkStats(const char *name, const net::Link &link)
{
    // The two per-link sets reset together through the fabric;
    // collectStats registers that resetter once, on the read-link set.
    // hopp-analyze: allow(stat-no-resetter)
    stats::StatSet s(name);
    s.record("bytes", static_cast<double>(link.bytesSent()),
             "payload bytes");
    s.record("transfers", static_cast<double>(link.transfers()),
             "transfers accepted");
    s.record("queue_delay_mean_ns", link.queueDelay().mean(),
             "mean per-transfer queueing delay");
    s.record("queue_delay_max_ns", link.queueDelay().max(),
             "max per-transfer queueing delay");
    return s;
}

stats::StatSet
latencyStats(obs::FaultLatency &lat)
{
    stats::StatSet s("latency");
    lat.dumpStats(s);
    s.addResetter([&lat] { lat.reset(); });
    return s;
}

/**
 * Deterministic JSON number: integral values print without a
 * fractional part, everything else round-trips via %.17g.
 */
void
appendNumber(std::string &out, double v)
{
    char buf[40];
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v >= -9.0e15 && v <= 9.0e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    out += buf;
}

} // namespace

std::vector<stats::StatSet>
collectStats(Machine &machine)
{
    std::vector<stats::StatSet> out;
    out.push_back(llcStats(machine.llc()));
    out.push_back(dramStats(machine.dram()));
    out.push_back(mcStats(machine.memCtrl()));
    out.push_back(vmsStats(machine.vms()));
    out.push_back(backendStats(machine.backend()));
    out.push_back(prefetchStats(machine.prefetchStats()));
    out.push_back(latencyStats(machine.faultLatency()));
    out.push_back(linkStats("net.read", machine.fabric().readLink()));
    out.push_back(
        linkStats("net.write", machine.fabric().writeLink()));
    // Both links reset through the fabric; register it once, on the
    // read-link set.
    out[out.size() - 2].addResetter(
        [f = &machine.fabric()] { f->resetStats(); });
    if (auto *h = machine.hoppSystem())
        out.push_back(hoppStats(*h));
    return out;
}

std::string
statsReport(Machine &machine)
{
    std::string out;
    for (const auto &set : collectStats(machine))
        out += set.toString();
    return out;
}

std::string
statsJson(Machine &machine)
{
    // Flat, deterministic: collection order is fixed, names are
    // unique, and numbers format identically across runs.
    std::string out = "{\n";
    bool first = true;
    for (const auto &set : collectStats(machine)) {
        for (const auto &v : set.values()) {
            if (!first)
                out += ",\n";
            first = false;
            out += "  \"";
            out += v.name;
            out += "\": ";
            appendNumber(out, v.value);
        }
    }
    out += "\n}\n";
    return out;
}

void
resetAllStats(Machine &machine)
{
    for (auto &set : collectStats(machine))
        set.resetAll();
}

} // namespace hopp::runner
