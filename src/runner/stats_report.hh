/**
 * @file
 * gem5-style statistics report: every component contributes its
 * counters to named StatSets, collated into one dump — the
 * machine-readable companion to the benchmark tables.
 */

#pragma once

#include <string>
#include <vector>

#include "stats/stats.hh"

namespace hopp::runner
{

class Machine;

/**
 * Collect every component's statistics from a machine that has
 * finished running.
 */
std::vector<stats::StatSet> collectStats(Machine &machine);

/** Render the full stats dump as text ("name value # desc" lines). */
std::string statsReport(Machine &machine);

/**
 * Render the full stats dump as one flat JSON object
 * (`{"llc.hits": 123, ...}`), deterministically: fixed collection
 * order and integer formatting for integral values. Includes the
 * fault-latency percentiles (`latency.<class>.p50_ns` ...).
 */
std::string statsJson(Machine &machine);

/**
 * Zero every counter the stats report covers, through the resetters
 * the builders register alongside their records — use between
 * repetitions on one machine instead of ad-hoc per-component calls
 * (which historically missed newly added counters).
 */
void resetAllStats(Machine &machine);

} // namespace hopp::runner

