#include "runner/machine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/blackbox.hh"
#include "obs/profiler.hh"
#include "obs/trace_writer.hh"

namespace hopp::runner
{

const char *
systemName(SystemKind k)
{
    switch (k) {
      case SystemKind::Local: return "local";
      case SystemKind::NoPrefetch: return "no-prefetch";
      case SystemKind::Fastswap: return "fastswap";
      case SystemKind::Leap: return "leap";
      case SystemKind::Vma: return "vma";
      case SystemKind::DepthN: return "depth-n";
      case SystemKind::Hopp: return "hopp";
      case SystemKind::HoppOnly: return "hopp-only";
    }
    return "?";
}

Tick
RunResult::completionOf(const std::string &name) const
{
    for (const auto &a : apps) {
        if (a.name == name)
            return a.completion;
    }
    hopp_fatal("no app named '%s' in this run", name.c_str());
}

double
normalizedPerformance(Tick ct_local, Tick ct_system)
{
    hopp_assert(ct_system > Tick{}, "zero completion time");
    return static_cast<double>(ct_local - Tick{}) /
           static_cast<double>(ct_system - Tick{});
}

Machine::Machine(const MachineConfig &cfg) : cfg_(cfg) {}

Machine::~Machine() = default;

void
Machine::addWorkload(const workloads::Workload &w)
{
    hopp_assert(!built_, "cannot add workloads after run()");
    apps_.push_back(w);
}

void
Machine::build()
{
    hopp_assert(!apps_.empty(), "no workloads configured");
    built_ = true;

    // Steady-state queue depth is one event per thread plus in-flight
    // prefetch completions and a handful of background actors; size
    // the event heap so it never regrows mid-run.
    eq_.reserve(4096 + apps_.size() * 64);

    // cgroup limit per app; Local gives every app its full footprint.
    std::uint64_t total_limit = 0;
    std::vector<std::uint64_t> limits;
    for (const auto &w : apps_) {
        double ratio =
            cfg_.system == SystemKind::Local ? 1.0 : cfg_.localMemRatio;
        auto limit = static_cast<std::uint64_t>(
            static_cast<double>(w.footprintPages) * ratio);
        limit = std::max<std::uint64_t>(limit, 64);
        if (cfg_.system == SystemKind::Local)
            limit += 64; // headroom: no reclaim in the local baseline
        limits.push_back(limit);
        total_limit += limit;
    }

    dram_ = std::make_unique<mem::Dram>(total_limit +
                                        cfg_.dramSlackFrames);
    mc_ = std::make_unique<mem::MemCtrl>(*dram_);
    llc_ = std::make_unique<mem::Llc>(cfg_.llc);
    fabric_ = std::make_unique<net::RdmaFabric>(eq_, cfg_.link);
    // Remote node: everything that could ever be swapped out.
    std::uint64_t remote_slots = 0;
    for (const auto &w : apps_)
        remote_slots += w.footprintPages;
    node_ = std::make_unique<remote::RemoteNode>(remote_slots * 2 + 1024);
    backend_ = std::make_unique<remote::SwapBackend>(*fabric_, *node_);
    vms_ = std::make_unique<vm::Vms>(eq_, *dram_, *mc_, *llc_, *backend_,
                                     cfg_.vms);
    vms_->addListener(&stats_);

    // Processes + threads.
    for (std::size_t i = 0; i < apps_.size(); ++i) {
        Pid pid{static_cast<std::uint16_t>(i + 1)};
        vms_->createProcess(pid, limits[i]);
        for (const auto &make : apps_[i].threads) {
            auto t = std::make_unique<Thread>();
            t->pid = pid;
            t->gen = make();
            // One allocation per thread, here: the steady-state fill/
            // drain loop reuses this block for the machine's lifetime.
            hopp_assert(cfg_.quantum > 0, "quantum must be nonzero");
            t->block.resize(cfg_.quantum);
            if (cfg_.tlb)
                vms_->addPteHook(&t->tlb);
            threads_.push_back(std::move(t));
        }
    }

    // The system under test.
    switch (cfg_.system) {
      case SystemKind::Local:
      case SystemKind::NoPrefetch:
        break;
      case SystemKind::Fastswap: {
        auto ra = std::make_unique<prefetch::Readahead>(
            *vms_, *backend_, cfg_.readahead);
        vms_->addListener(ra.get());
        prefetcher_ = std::move(ra);
        break;
      }
      case SystemKind::Leap: {
        auto leap =
            std::make_unique<prefetch::Leap>(*vms_, cfg_.leap);
        vms_->addListener(leap.get());
        prefetcher_ = std::move(leap);
        break;
      }
      case SystemKind::Vma:
        prefetcher_ =
            std::make_unique<prefetch::VmaPrefetcher>(*vms_, cfg_.vma);
        break;
      case SystemKind::DepthN:
        prefetcher_ =
            std::make_unique<prefetch::DepthN>(*vms_, cfg_.depth);
        break;
      case SystemKind::Hopp: {
        // HoPP complements an existing kernel-based system: Fastswap's
        // readahead keeps running on the fault path (§V).
        auto ra = std::make_unique<prefetch::Readahead>(
            *vms_, *backend_, cfg_.readahead);
        vms_->addListener(ra.get());
        prefetcher_ = std::move(ra);
        hoppSystem_ = std::make_unique<core::HoppSystem>(
            eq_, *vms_, *mc_, cfg_.hopp);
        break;
      }
      case SystemKind::HoppOnly:
        hoppSystem_ = std::make_unique<core::HoppSystem>(
            eq_, *vms_, *mc_, cfg_.hopp);
        break;
    }

    if (prefetcher_) {
        vms_->setFaultCallback(
            [p = prefetcher_.get()](const vm::FaultContext &ctx) {
                p->onFault(ctx);
            });
    }
    if (hoppSystem_)
        hoppSystem_->start();

    if (!cfg_.recordTracePath.empty()) {
        // The HMTT tap persisted: snapshot the page table exactly when
        // HoppSystem::start() walked it (just above), then observe the
        // same MC access and PTE event feeds the pipeline consumes.
        traceWriter_ = std::make_unique<trace::TraceWriter>(
            cfg_.recordTracePath);
        traceRecordOk_ = traceWriter_->ok();
        recorder_ = std::make_unique<TraceRecorder>(*traceWriter_);
        recorder_->snapshot(vms_->pageTable());
        mc_->attach(recorder_.get());
        vms_->addPteHook(recorder_.get());
    }

    // Observability plane. Latency histograms are always on (their
    // cost is one sample per fault); the tracer and sampler only when
    // asked for.
    latency_.setCostModel(cfg_.vms.cost);
    vms_->addListener(&latency_);
    if (cfg_.trace) {
        tracer_.enable(true);
        eq_.setTracer(&tracer_);
        mc_->setTracer(&tracer_);
        fabric_->setTracer(&tracer_);
        vms_->setTracer(&tracer_);
        if (hoppSystem_)
            hoppSystem_->setTracer(&tracer_);
    }
    if (cfg_.metricsPeriod > 0) {
        metrics_ = std::make_unique<obs::MetricsSampler>(
            eq_, cfg_.metricsPeriod);
        // Threads are pumped outside the event queue, so "queue empty"
        // alone no longer means the run is over.
        metrics_->setLiveness([this] {
            for (const auto &t : threads_) {
                if (!t->done)
                    return true;
            }
            return false;
        });
        metrics_->addGauge("dram.used_frames", [d = dram_.get()] {
            return static_cast<double>(d->usedFrames());
        });
        metrics_->addGauge("vm.swapcache_pages", [v = vms_.get()] {
            return static_cast<double>(v->swapCachedPages());
        });
        metrics_->addGauge("vm.inflight_prefetches", [v = vms_.get()] {
            return static_cast<double>(v->inflightPrefetches());
        });
        metrics_->addGauge("remote.live_slots", [n = node_.get()] {
            return static_cast<double>(n->liveSlots());
        });
        metrics_->addGauge("sim.queue_depth", [q = &eq_] {
            return static_cast<double>(q->size());
        });
        for (std::size_t i = 0; i < apps_.size(); ++i) {
            Pid pid{static_cast<std::uint16_t>(i + 1)};
            metrics_->addGauge(
                "vm.lru_pages.pid" + std::to_string(i + 1),
                [v = vms_.get(), pid] {
                    return static_cast<double>(v->cgroup(pid).lruSize());
                });
        }
        if (hoppSystem_) {
            metrics_->addGauge("hopp.rpt_entries", [h = hoppSystem_.get()] {
                return static_cast<double>(h->rpt().size());
            });
            metrics_->addGauge("hopp.ring_occupancy",
                               [h = hoppSystem_.get()] {
                return static_cast<double>(h->ring().size());
            });
            metrics_->addGauge("hopp.exec_outstanding",
                               [h = hoppSystem_.get()] {
                return static_cast<double>(h->exec().outstanding());
            });
        }
        if (cfg_.trace)
            metrics_->setTracer(&tracer_);
        metrics_->start();
    }
}

void
Machine::pump()
{
    // One zone activation for the whole pump: its self time is the
    // scheduler loop itself (argmin scan, cursor bookkeeping, the
    // children's clock reads) at zero per-iteration cost, so the
    // profiler's attributed fraction covers the loop without slowing
    // it down.
    HOPP_PROF(AccessPump);
    const std::size_t n = threads_.size();
    for (;;) {
        // Min-time runnable thread, and the runner-up time: the yield
        // horizon for the drain segment.
        std::size_t best = n;
        Tick tmin = maxTick;
        Tick limit = maxTick;
        for (std::size_t i = 0; i < n; ++i) {
            const Thread &t = *threads_[i];
            if (t.done)
                continue;
            if (best == n || t.now < tmin) {
                limit = tmin;
                tmin = t.now;
                best = i;
            } else if (t.now < limit) {
                limit = t.now;
            }
        }
        if (best == n) {
            // Applications all finished: drain the remaining events
            // (in-flight completions, reclaim passes, final samples).
            if (!eq_.runOne())
                return;
            maybeCheck();
            continue;
        }
        if (eq_.nextTime() <= tmin) {
            // An event (RDMA completion, kswapd wakeup, trainer drain,
            // metrics sample) is due no later than every thread: it
            // fires first, exactly as when thread timeslices were
            // themselves events competing on (time, schedule order).
            // Invariant checks hang off event dispatch alone: the
            // check cadence is event-count-gated, and only runOne()
            // advances that count.
            eq_.runOne();
            maybeCheck();
            continue;
        }
        // One drain segment of the chosen thread, fused into the pump:
        // in the common two-thread ping-pong a segment is a single
        // access, so even a per-segment function call shows up in the
        // wall time.
        Thread &t = *threads_[best];
        vm::Tlb *tlb = cfg_.tlb ? &t.tlb : nullptr;
        if (cfg_.batch) {
            if (t.blockPos == t.blockLen) {
                {
                    HOPP_PROF(WorkloadGen);
                    t.blockLen =
                        t.gen->nextBatch(t.block.data(), t.block.size());
                }
                t.blockPos = 0;
                if (t.blockLen == 0) {
                    // Empty refill is end-of-stream (nextBatch
                    // contract).
                    t.done = true;
                    t.completion = t.now;
                }
                continue;
            }
            std::size_t consumed = 0;
            t.now = vms_->accessBatch(t.pid, t.block.data() + t.blockPos,
                                      t.blockLen - t.blockPos, t.now,
                                      limit, &consumed, tlb);
            t.blockPos += consumed;
            t.accesses += consumed;
            if (t.blockPos == t.blockLen && t.blockLen < t.block.size()) {
                // The refill came back short, so this drained the last
                // buffered access: the stream is over. (A full final
                // block is caught by the empty refill above — same
                // completion time either way, since discovery performs
                // no access.)
                t.done = true;
                t.completion = t.now;
            }
        } else {
            // Scalar reference pump: per-access next() + access() with
            // the very same yield checks accessBatch applies, so batch
            // on and off are byte-identical by construction (the
            // --no-batch cross-check test).
            unsigned budget = cfg_.quantum;
            workloads::Access a;
            while (budget-- > 0) {
                {
                    HOPP_PROF(WorkloadGen);
                    if (!t.gen->next(a)) {
                        t.done = true;
                        t.completion = t.now;
                        break;
                    }
                }
                {
                    HOPP_PROF(VmsAccess);
                    t.now +=
                        vms_->access(t.pid, a.va, a.write, t.now, tlb);
                }
                ++t.accesses;
                if (t.now >= limit || t.now >= eq_.nextTime())
                    break;
            }
        }
    }
}

void
Machine::maybeCheck()
{
    if (!cfg_.checkInterval ||
        eq_.executed() - lastCheckAt_ < cfg_.checkInterval) {
        return;
    }
    lastCheckAt_ = eq_.executed();
    if (cfg_.corruptAfterEvents != 0 && !corrupted_ &&
        eq_.executed() >= cfg_.corruptAfterEvents) {
        // Forensics test hook (see MachineConfig::corruptAfterEvents):
        // break LLC occupancy accounting so the validators below fail
        // and the black-box dump path runs for real.
        corrupted_ = true;
        check::testing::leakLlcOccupancy(*llc_);
    }
    checkInvariants().enforce();
}

check::Report
Machine::checkInvariants()
{
    prepare();
    HOPP_PROF(InvariantCheck);
    // Last-known-good marker: a post-mortem reader sees how far past
    // the final clean pass the ring's tail runs (a = events executed).
    obs::blackbox().record(obs::BbKind::InvariantCheck, eq_.now(), 0,
                           eq_.executed(), 0);
    check::Report r;
    check::validateEventQueue(eq_, eqWatch_, r);
    check::validateVms(*vms_, r);
    check::validateLlc(*llc_, r);
    if (hoppSystem_)
        check::validateHopp(*hoppSystem_, *vms_, r);
    return r;
}

void
Machine::prepare()
{
    if (!built_) {
        HOPP_PROF(MachineBuild);
        build();
    }
}

bool
Machine::dumpForensics(const std::string &path) const
{
    return obs::writeFile(path, obs::blackbox().toJsonl());
}

RunResult
Machine::run()
{
    // Host-side wall-time attribution for the whole run (build, the
    // event loop, and result collection); inner zones claim their
    // slices as self time. No-op unless obs::prof::enable(true) ran.
    HOPP_PROF(Run);
    // One black-box flight per run: the ring must end as the tail of
    // *this* run, not a predecessor on the same host thread (sweeps
    // reuse worker threads).
    obs::blackbox().clear();
    prepare();
    tracer_.begin("machine", "run", eq_.now(), obs::track::machine);
    pump();
    tracer_.end("machine", "run", eq_.now(), obs::track::machine);
    if (metrics_) {
        // The sampler stops rescheduling as the queue drains; take one
        // closing snapshot of the final state.
        metrics_->sampleNow();
    }
    if (cfg_.checkInterval) {
        // Final audit over the drained machine.
        checkInvariants().enforce();
    }
    if (traceWriter_)
        traceRecordOk_ = traceWriter_->finish() && traceRecordOk_;

    RunResult r;
    for (std::size_t i = 0; i < apps_.size(); ++i) {
        const auto &w = apps_[i];
        AppResult ar;
        Pid pid{static_cast<std::uint16_t>(i + 1)};
        ar.pid = pid;
        ar.name = w.name;
        for (const auto &t : threads_) {
            if (t->pid != pid)
                continue;
            hopp_assert(t->done, "thread never finished");
            ar.completion = std::max(ar.completion, t->completion);
            ar.accesses += t->accesses;
        }
        r.makespan = std::max(r.makespan, ar.completion);
        r.apps.push_back(std::move(ar));
    }
    r.accuracy = stats_.accuracy();
    r.coverage = stats_.coverage();
    r.dramHitCoverage = stats_.dramHitCoverage();
    r.systemAccuracy = r.accuracy;
    if (hoppSystem_) {
        std::uint64_t issued = 0, hits = 0;
        for (auto t : {core::Tier::Ssp, core::Tier::Lsp,
                       core::Tier::Rsp}) {
            issued += hoppSystem_->exec().tierStats(t).issued;
            hits += hoppSystem_->exec().tierStats(t).hits;
        }
        if (issued) {
            r.systemAccuracy = static_cast<double>(hits) /
                               static_cast<double>(issued);
        }
    }
    r.vms = vms_->stats();
    r.demandRemote = backend_->demandReads();
    r.prefetchReads = backend_->prefetchReads();
    r.writebacks = backend_->writebacks();
    return r;
}

RunResult
runOne(const std::string &workload, SystemKind system,
       double local_ratio, const workloads::WorkloadScale &scale,
       const MachineConfig &base)
{
    MachineConfig cfg = base;
    cfg.system = system;
    cfg.localMemRatio = local_ratio;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload(workload, scale));
    return m.run();
}

} // namespace hopp::runner
