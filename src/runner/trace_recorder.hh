/**
 * @file
 * Trace recorder: the HMTT bump-in-the-wire tap (§V) persisted to the
 * blocked replay format. Attached to the memory controller and the
 * VMS PTE hooks exactly where HoppSystem attaches, it captures the
 * complete input stream the MC-side pipeline consumes — every MC
 * access plus every RPT-relevant page-table event — in file order =
 * causal order, which is what lets a replay reproduce the live run's
 * MC-side statistics byte for byte (DESIGN.md §15).
 */

#pragma once

#include "mem/memctrl.hh"
#include "trace/trace_file.hh"
#include "vm/page_table.hh"

namespace hopp::runner
{

/** Streams the MC + PTE event feed into a TraceWriter. */
class TraceRecorder : public mem::McObserver, public vm::PteHook
{
  public:
    explicit TraceRecorder(trace::TraceWriter &out) : out_(out) {}

    /**
     * Record the page-table mappings that exist right now as PteInit
     * records — the §III-C initial-RPT walk, captured so the replay
     * starts from the same reverse map. Call before attaching.
     */
    void
    snapshot(const vm::PageTable &pt)
    {
        trace::ReplayRecord r;
        r.kind = trace::ReplayKind::PteInit;
        pt.forEachPresent(
            [&](Pid pid, Vpn vpn, const vm::PageInfo &pi) {
                r.pid = pid;
                r.vpn = vpn;
                r.ppn = pi.ppn;
                r.shared = pi.shared;
                r.huge = pi.huge;
                out_.append(r);
            });
    }

    void
    onMcAccess(PhysAddr pa, bool is_write, Tick now) override
    {
        trace::ReplayRecord r;
        r.kind = trace::ReplayKind::Mc;
        r.isWrite = is_write;
        r.pa = pa;
        r.tick = now;
        out_.append(r);
    }

    void
    onPteSet(Pid pid, Vpn vpn, Ppn ppn, bool shared, bool huge,
             Tick now) override
    {
        trace::ReplayRecord r;
        r.kind = trace::ReplayKind::PteSet;
        r.pid = pid;
        r.vpn = vpn;
        r.ppn = ppn;
        r.shared = shared;
        r.huge = huge;
        r.tick = now;
        out_.append(r);
    }

    void
    onPteClear(Pid pid, Vpn vpn, Ppn ppn, Tick now) override
    {
        trace::ReplayRecord r;
        r.kind = trace::ReplayKind::PteClear;
        r.pid = pid;
        r.vpn = vpn;
        r.ppn = ppn;
        r.tick = now;
        out_.append(r);
    }

  private:
    trace::TraceWriter &out_;
};

} // namespace hopp::runner
