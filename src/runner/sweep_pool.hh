/**
 * @file
 * SweepPool: host-parallel execution of independent simulation runs.
 *
 * The figure-reproduction benches sweep dozens of (workload, system,
 * ratio) configurations, and every run is a pure function of its
 * config — one Machine, one event queue, zero shared mutable state.
 * That makes a sweep embarrassingly parallel on the host without
 * touching simulated time: the pool hands each worker the next
 * undispatched index and commits results by SUBMISSION index, so the
 * result vector is identical whatever order the workers finish in.
 *
 * Determinism contract (DESIGN.md §10): for any task function whose
 * result depends only on its index, run(n, fn) with jobs = k returns
 * the same vector for every k. Tasks must not share mutable state;
 * each builds its own Machine and renders its own output. The first
 * task exception is captured and rethrown on the submitting thread
 * after all workers join.
 *
 * This header is the ONLY place in src/ and tools/ allowed to use raw
 * thread primitives (enforced by hopp_lint's thread-primitive rule):
 * simulation code must stay single-threaded and deterministic, and
 * host parallelism stays quarantined behind this index-based API.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace hopp::runner
{

/**
 * Fixed-width worker pool for independent, index-addressed tasks.
 */
class SweepPool
{
  public:
    /** @param jobs worker count; <= 1 means run inline, serially. */
    explicit SweepPool(unsigned jobs) : jobs_(jobs == 0 ? 1 : jobs) {}

    /** Worker count in effect. */
    unsigned jobs() const { return jobs_; }

    /**
     * Evaluate fn(0) .. fn(count - 1) and return the results indexed
     * by submission order. @tparam R result type (default-constructed
     * then assigned, so it must be default-constructible and movable).
     */
    template <typename R, typename Fn>
    std::vector<R>
    run(std::size_t count, Fn fn)
    {
        std::vector<R> results(count);
        if (jobs_ <= 1 || count <= 1) {
            // Inline serial path: no threads at all, the reference
            // behaviour the parallel path must be indistinguishable
            // from.
            for (std::size_t i = 0; i < count; ++i)
                results[i] = fn(i);
            return results;
        }

        std::atomic<std::size_t> next{0};
        std::exception_ptr first_error;
        std::mutex error_mu;
        auto worker = [&] {
            for (;;) {
                std::size_t i = next.fetch_add(1);
                if (i >= count)
                    return;
                try {
                    results[i] = fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mu);
                    if (!first_error)
                        first_error = std::current_exception();
                    return;
                }
            }
        };

        std::size_t workers =
            jobs_ < count ? jobs_ : static_cast<unsigned>(count);
        std::vector<std::thread> threads;
        threads.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            threads.emplace_back(worker);
        for (std::thread &t : threads)
            t.join();
        if (first_error)
            std::rethrow_exception(first_error);
        return results;
    }

    /**
     * Worker count to use when the caller wants "the machine's
     * parallelism": hardware concurrency, floored at 1.
     */
    static unsigned
    hardwareJobs()
    {
        unsigned n = std::thread::hardware_concurrency();
        return n == 0 ? 1 : n;
    }

  private:
    unsigned jobs_;
};

} // namespace hopp::runner

