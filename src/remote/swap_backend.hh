/**
 * @file
 * Swap backend bridging the VMS to the remote memory node over RDMA.
 *
 * Owns the slot <-> (pid, vpn) mapping that swap-offset based
 * prefetchers (Fastswap readahead) consult, and turns page-in/page-out
 * requests into 4 KB RDMA transfers on the shared fabric.
 */

#pragma once

#include <optional>
#include <vector>

#include "common/flat_map.hh"
#include "common/types.hh"
#include "net/rdma.hh"
#include "remote/remote_node.hh"

namespace hopp::remote
{

/** Owner of one swap slot. */
struct SlotOwner
{
    Pid pid;
    Vpn vpn;
};

/**
 * Swap backend: slot management + page transfer issue.
 */
class SwapBackend
{
  public:
    SwapBackend(net::RdmaFabric &fabric, RemoteNode &node)
        : fabric_(fabric), node_(node)
    {
        // The node provisions ~2x the combined footprint; at most half
        // of it is ever live at once, so sizing for that bound means
        // the reverse map never rehashes on the eviction path.
        owners_.reserve(node.capacity() / 2);
    }

    /** Allocate a slot for (pid, vpn); records the reverse mapping. */
    SwapSlot
    allocate(Pid pid, Vpn vpn)
    {
        SwapSlot slot = node_.allocate();
        owners_[slot] = SlotOwner{pid, vpn};
        return slot;
    }

    /** Free a slot (page dropped or process exit). */
    void
    release(SwapSlot slot)
    {
        owners_.erase(slot);
        node_.release(slot);
    }

    /** Reverse-map a slot to its page, if live. */
    std::optional<SlotOwner>
    owner(SwapSlot slot) const
    {
        const SlotOwner *o = owners_.find(slot);
        if (!o)
            return std::nullopt;
        return *o;
    }

    /**
     * Pages owning the slots in [slot - before, slot + after], excluding
     * @p slot itself. This is the neighbourhood swap-offset readahead
     * fetches around a faulting slot.
     */
    std::vector<SlotOwner>
    neighbors(SwapSlot slot, std::uint64_t before,
              std::uint64_t after) const
    {
        std::vector<SlotOwner> out;
        SwapSlot lo = slot >= before ? slot - before : 0;
        for (SwapSlot s = lo; s <= slot + after; ++s) {
            if (s == slot)
                continue;
            if (const SlotOwner *o = owners_.find(s))
                out.push_back(*o);
        }
        return out;
    }

    /**
     * Synchronous demand page-in: reserves fabric time and returns the
     * completion tick. The caller (fault handler) stalls until then.
     */
    Tick
    demandRead(Tick now)
    {
        ++demandReads_;
        return fabric_.read(pageBytes, now);
    }

    /** Asynchronous page-in for prefetching. The completion callback is
     *  forwarded into the event queue's inline storage (no allocation;
     *  capture size checked at compile time). */
    template <typename F>
    Tick
    readAsync(Tick now, F &&done)
    {
        ++prefetchReads_;
        return fabric_.readAsync(pageBytes, now, std::forward<F>(done));
    }

    /**
     * Asynchronous multi-page read in one RDMA transfer (huge-batch
     * prefetching, §IV): one base latency for @p pages pages.
     */
    template <typename F>
    Tick
    readBatchAsync(std::uint64_t pages, Tick now, F &&done)
    {
        prefetchReads_ += pages;
        ++batchReads_;
        return fabric_.readAsync(pages * pageBytes, now,
                                 std::forward<F>(done));
    }

    /** Asynchronous page-out (reclaim writeback). */
    template <typename F>
    Tick
    writeAsync(Tick now, F &&done)
    {
        ++writebacks_;
        return fabric_.writeAsync(pageBytes, now, std::forward<F>(done));
    }

    /** Fire-and-forget page-out when nobody needs the completion. */
    Tick
    write(Tick now)
    {
        ++writebacks_;
        return fabric_.write(pageBytes, now);
    }

    /** Demand (fault-path) page reads issued. */
    std::uint64_t demandReads() const { return demandReads_; }

    /** Prefetch page reads issued. */
    std::uint64_t prefetchReads() const { return prefetchReads_; }

    /** Page writebacks issued. */
    std::uint64_t writebacks() const { return writebacks_; }

    /** Multi-page batch reads issued. */
    std::uint64_t batchReads() const { return batchReads_; }

    /** Live slot -> page mappings (for tests). */
    std::size_t liveMappings() const { return owners_.size(); }

    /** Reset the issue counters (not the mappings). */
    void
    resetStats()
    {
        demandReads_ = 0;
        prefetchReads_ = 0;
        writebacks_ = 0;
        batchReads_ = 0;
    }

  private:
    net::RdmaFabric &fabric_;
    RemoteNode &node_;
    /// Flat open-addressed reverse map (PR 4 idiom): slot lookups sit
    /// on the readahead neighbourhood scan, where probing a contiguous
    /// slot array beats chasing unordered_map nodes.
    FlatU64Map<SlotOwner> owners_;
    std::uint64_t demandReads_ = 0;
    std::uint64_t prefetchReads_ = 0;
    std::uint64_t writebacks_ = 0;
    std::uint64_t batchReads_ = 0;
};

} // namespace hopp::remote

