/**
 * @file
 * The memory node: a passive slab of 4 KB swap slots reachable over
 * RDMA. Mirrors the paper's second server (6 x 8 GB DRAM) that "provides
 * remote memory" and runs no compute.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace hopp::remote
{

/** Identifier of one remote 4 KB slot. */
using SwapSlot = std::uint64_t;

/** Sentinel for "no slot". */
inline constexpr SwapSlot noSlot = ~SwapSlot(0);

/**
 * Remote memory node: allocates swap slots in ascending order (so that
 * slot adjacency mirrors eviction adjacency, which is what swap-offset
 * based readahead exploits) and recycles freed slots afterwards.
 */
class RemoteNode
{
  public:
    /** @param slots capacity of the node in 4 KB slots. */
    explicit RemoteNode(std::uint64_t slots) : capacity_(slots) {}

    /** Allocate one slot; panics when the node is full. */
    SwapSlot
    allocate()
    {
        if (!freed_.empty()) {
            SwapSlot s = freed_.back();
            freed_.pop_back();
            ++live_;
            return s;
        }
        hopp_assert(next_ < capacity_, "remote memory node full");
        ++live_;
        return next_++;
    }

    /** Return a slot to the node. */
    void
    release(SwapSlot slot)
    {
        hopp_assert(slot < next_, "release of never-allocated slot");
        hopp_assert(live_ > 0, "release with no live slots");
        --live_;
        freed_.push_back(slot);
    }

    /** Slots currently allocated. */
    std::uint64_t liveSlots() const { return live_; }

    /** Total capacity. */
    std::uint64_t capacity() const { return capacity_; }

    /** High-water mark of slot ids handed out. */
    std::uint64_t highWater() const { return next_; }

  private:
    std::uint64_t capacity_;
    std::uint64_t next_ = 0;
    std::uint64_t live_ = 0;
    std::vector<SwapSlot> freed_;
};

} // namespace hopp::remote

