/**
 * @file
 * The full HoPP system (Figure 4): hardware modules (HPD + RPT cache)
 * tapped into the memory controller, the reserved-DRAM hot-page ring,
 * and the software plane (trainer + policy + execution engines)
 * running asynchronously as a separate data path alongside the
 * kernel's fault-driven swap path.
 */

#pragma once

#include <vector>

#include "common/flat_map.hh"
#include "hopp/exec_engine.hh"
#include "hopp/hot_page.hh"
#include "hopp/hpd.hh"
#include "hopp/policy.hh"
#include "hopp/rpt.hh"
#include "hopp/stt.hh"
#include "hopp/trainer.hh"
#include "mem/memctrl.hh"
#include "obs/tracer.hh"
#include "sim/event_queue.hh"
#include "vm/vms.hh"

namespace hopp::core
{

/** Assembly-level configuration of the whole HoPP system. */
struct HoppConfig
{
    HpdConfig hpd;
    RptCacheConfig rptCache;
    SttConfig stt;
    PolicyConfig policy;

    /** Enabled prefetch tiers (Fig. 18-20 ablations). */
    unsigned tierMask = tiers::all;

    /**
     * Memory channels (§III-B "impact of multiple memory channels").
     * Each channel's MC carries its own HPD table and RPT cache; the
     * prefetch training framework merges (non-interleaved) or
     * de-duplicates (interleaved) their hot-page outputs.
     */
    unsigned channels = 1;

    /**
     * Interleaved channels: consecutive cachelines of a page live in
     * distinct channels, so each HPD sees only 64/channels lines of a
     * page — the paper notes N must shrink accordingly.
     */
    bool channelInterleaved = true;

    /**
     * Divide the HPD threshold by the channel count under
     * interleaving, as §III-B prescribes ("we need to reduce N").
     */
    bool scaleThresholdWithChannels = true;

    /** Huge-batch prefetching of long streams (§IV extension). */
    BatchConfig batch;

    /**
     * Correlation (Markov) tier parameters; enable it by adding
     * tiers::markov to tierMask. The §III-D "ML-based designs enabled
     * by full trace" direction.
     */
    MarkovConfig markov;

    /**
     * Use the hot-page trace to advise kernel reclaim (§IV: improving
     * page eviction with full memory traces).
     */
    bool evictionAdvisor = false;

    /** Pages hot within this window are kept from eviction. */
    Duration warmWindow = 2'000'000; // 2 ms

    /**
     * Advisor hotness-table size that triggers an age-based prune:
     * entries whose last hot extraction fell out of warmWindow are
     * dropped (they can no longer satisfy keepWarm), fresh ones
     * survive. Sized so prunes are rare outside adversarial sweeps.
     */
    std::size_t warmEntriesCap = 1 << 20;

    /** Latency from hot-page extraction to software processing. */
    Duration trainerDelay = 500;

    /** Hot-page ring capacity (reserved DRAM area). */
    std::size_t ringCapacity = 1 << 16;
};

/**
 * HoPP: hardware + software, wired into one machine.
 */
class HoppSystem : public mem::McObserver,
                   public vm::PteHook,
                   public vm::PageEventListener,
                   public vm::Vms::EvictionAdvisor
{
  public:
    HoppSystem(sim::EventQueue &eq, vm::Vms &vms, mem::MemCtrl &mc,
               const HoppConfig &cfg = {});

    /**
     * Attach to the machine and build the initial RPT by walking all
     * existing page tables (§III-C). Call once, before (or while) the
     * applications run.
     */
    void start();

    // --- hardware data path -------------------------------------
    void onMcAccess(PhysAddr pa, bool is_write, Tick now) override;

    // --- RPT maintenance hooks (§V: set_pte_at / pte_clear) ------
    void onPteSet(Pid pid, Vpn vpn, Ppn ppn, bool shared, bool huge,
                  Tick now) override;
    void onPteClear(Pid pid, Vpn vpn, Ppn ppn, Tick now) override;

    // --- feedback from the VMS on injected pages -----------------
    void onPrefetchCompleted(Pid pid, Vpn vpn, vm::Origin o, Tick now,
                             bool injected) override;
    void onPrefetchHit(Pid pid, Vpn vpn, vm::Origin o, Tick ready_at,
                       Tick hit_at, bool dram_hit) override;
    void onPrefetchEvicted(Pid pid, Vpn vpn, vm::Origin o,
                           Tick now) override;

    // --- trace-informed eviction advice (§IV) --------------------
    bool keepWarm(Pid pid, Vpn vpn, Tick now) override;

    /** Channel an MC access routes to. */
    unsigned channelOf(PhysAddr pa) const;

    /** Component access for tests and benches (channel 0 views). */
    Hpd &hpd() { return hpds_[0]; }
    Rpt &rpt() { return rpt_; }
    RptCache &rptCache() { return rptCaches_[0]; }

    /** Per-channel hardware (size = config().channels). */
    Hpd &hpd(unsigned channel) { return hpds_.at(channel); }
    RptCache &rptCache(unsigned channel)
    {
        return rptCaches_.at(channel);
    }

    /** Aggregate HPD statistics over all channels. */
    HpdStats hpdTotals() const;

    /** The configuration in effect. */
    const HoppConfig &config() const { return cfg_; }
    Stt &stt() { return stt_; }
    PolicyEngine &policy() { return policy_; }
    ExecEngine &exec() { return exec_; }
    Trainer &trainer() { return trainer_; }
    HotPageRing &ring() { return ring_; }

    /** Hot pages whose PPN the RPT could not map (dropped). */
    std::uint64_t unmappedHotPages() const { return unmapped_; }

    /** Live advisor hotness entries (gauge). */
    std::uint64_t warmEntriesLive() const { return lastHot_.size(); }

    /** Stale advisor entries aged out by pruning (counter). */
    std::uint64_t warmPruned() const { return warmPruned_; }

    /** Advisor prune passes executed (counter). */
    std::uint64_t warmPrunePasses() const { return warmPrunePasses_; }

    /**
     * Reset every statistic this system owns: the per-channel HPD and
     * RPT-cache counters, the software pipeline stats, and the
     * system-level counters (unmapped drops, hot pages seen, advisor
     * prune totals). Structural state — the RPT, the advisor hotness
     * table, stream state — is untouched: resetting stats must not
     * change simulated behaviour.
     */
    void resetStats();

    /**
     * Attach the flight recorder: ring-drain batch spans on the HoPP
     * software track, hot-page extraction counters and RPT-lookup
     * outcome counters. nullptr detaches.
     */
    void setTracer(obs::Tracer *tracer) { trace_ = tracer; }

  private:
    void drainRing();
    void pruneWarm(Tick now);

    sim::EventQueue &eq_;
    vm::Vms &vms_;
    mem::MemCtrl &mc_;
    HoppConfig cfg_;
    // By-value per-channel hardware: channel dispatch indexes straight
    // into contiguous storage instead of chasing unique_ptrs.
    std::vector<Hpd> hpds_;            // one per channel
    Rpt rpt_;
    std::vector<RptCache> rptCaches_;  // one per MC
    HotPageRing ring_;
    Stt stt_;
    PolicyEngine policy_;
    ExecEngine exec_;
    Trainer trainer_;
    bool drainScheduled_ = false;
    bool started_ = false;
    std::uint64_t unmapped_ = 0;
    obs::Tracer *trace_ = nullptr;
    std::uint64_t hotPagesSeen_ = 0;

    /** Advisor state: last two hot-extraction times per page. */
    struct Hotness
    {
        Tick last;
        Tick prev;
    };

    /// Keyed by pageKey(pid, vpn); open-addressed so the per-hot-page
    /// advisor update is a flat probe, not a node allocation.
    FlatU64Map<Hotness> lastHot_;
    std::uint64_t warmPruned_ = 0;
    std::uint64_t warmPrunePasses_ = 0;
    /// Next prune trigger; starts at cfg_.warmEntriesCap and backs off
    /// when the table is genuinely warm (see pruneWarm).
    std::size_t warmPruneAt_ = 0;
};

} // namespace hopp::core

