/**
 * @file
 * The full HoPP system (Figure 4): the MC-side HotPagePipeline
 * (HPD + RPT cache + ring + trainer) wired to a live machine — the
 * VMS page-table hooks feed the RPT, the ExecEngine injects prefetched
 * PTEs, and VMS listener callbacks close the timeliness feedback loop.
 * The pipeline itself lives in pipeline.hh so trace replay can drive
 * the identical hardware/trainer chain without a VMS.
 */

#pragma once

#include "hopp/exec_engine.hh"
#include "hopp/pipeline.hh"
#include "mem/memctrl.hh"
#include "vm/vms.hh"

namespace hopp::core
{

/**
 * HoPP: hardware + software, wired into one machine.
 */
class HoppSystem : public mem::McObserver,
                   public vm::PteHook,
                   public vm::PageEventListener,
                   public vm::Vms::EvictionAdvisor
{
  public:
    HoppSystem(sim::EventQueue &eq, vm::Vms &vms, mem::MemCtrl &mc,
               const HoppConfig &cfg = {});

    /**
     * Attach to the machine and build the initial RPT by walking all
     * existing page tables (§III-C). Call once, before (or while) the
     * applications run.
     */
    void start();

    // --- hardware data path -------------------------------------
    void
    onMcAccess(PhysAddr pa, bool is_write, Tick now) override
    {
        pipeline_.onMcAccess(pa, is_write, now);
    }

    // --- RPT maintenance hooks (§V: set_pte_at / pte_clear) ------
    void
    onPteSet(Pid pid, Vpn vpn, Ppn ppn, bool shared, bool huge,
             Tick now) override
    {
        pipeline_.onPteSet(pid, vpn, ppn, shared, huge, now);
    }
    void
    onPteClear(Pid pid, Vpn vpn, Ppn ppn, Tick now) override
    {
        pipeline_.onPteClear(pid, vpn, ppn, now);
    }

    // --- feedback from the VMS on injected pages -----------------
    void onPrefetchCompleted(Pid pid, Vpn vpn, vm::Origin o, Tick now,
                             bool injected) override;
    void onPrefetchHit(Pid pid, Vpn vpn, vm::Origin o, Tick ready_at,
                       Tick hit_at, bool dram_hit) override;
    void onPrefetchEvicted(Pid pid, Vpn vpn, vm::Origin o,
                           Tick now) override;

    // --- trace-informed eviction advice (§IV) --------------------
    bool
    keepWarm(Pid pid, Vpn vpn, Tick now) override
    {
        return pipeline_.keepWarm(pid, vpn, now);
    }

    /** Channel an MC access routes to. */
    unsigned
    channelOf(PhysAddr pa) const
    {
        return pipeline_.channelOf(pa);
    }

    /** The MC-side pipeline (replay shares this exact class). */
    HotPagePipeline &pipeline() { return pipeline_; }

    /** Component access for tests and benches (channel 0 views). */
    Hpd &hpd() { return pipeline_.hpd(); }
    Rpt &rpt() { return pipeline_.rpt(); }
    RptCache &rptCache() { return pipeline_.rptCache(); }

    /** Per-channel hardware (size = config().channels). */
    Hpd &hpd(unsigned channel) { return pipeline_.hpd(channel); }
    RptCache &rptCache(unsigned channel)
    {
        return pipeline_.rptCache(channel);
    }

    /** Aggregate HPD statistics over all channels. */
    HpdStats hpdTotals() const { return pipeline_.hpdTotals(); }

    /** The configuration in effect. */
    const HoppConfig &config() const { return pipeline_.config(); }
    Stt &stt() { return pipeline_.stt(); }
    PolicyEngine &policy() { return policy_; }
    ExecEngine &exec() { return exec_; }
    Trainer &trainer() { return pipeline_.trainer(); }
    HotPageRing &ring() { return pipeline_.ring(); }

    /** Hot pages whose PPN the RPT could not map (dropped). */
    std::uint64_t unmappedHotPages() const
    {
        return pipeline_.unmappedHotPages();
    }

    /** Live advisor hotness entries (gauge). */
    std::uint64_t warmEntriesLive() const
    {
        return pipeline_.warmEntriesLive();
    }

    /** Stale advisor entries aged out by pruning (counter). */
    std::uint64_t warmPruned() const { return pipeline_.warmPruned(); }

    /** Advisor prune passes executed (counter). */
    std::uint64_t warmPrunePasses() const
    {
        return pipeline_.warmPrunePasses();
    }

    /**
     * Reset every statistic this system owns: the pipeline's (HPD,
     * RPT cache, STT, trainer, ring, advisor) plus the live-side
     * policy and execution engines. Structural state is untouched:
     * resetting stats must not change simulated behaviour.
     */
    void resetStats();

    /** Attach the flight recorder (nullptr detaches). */
    void setTracer(obs::Tracer *tracer)
    {
        pipeline_.setTracer(tracer);
    }

  private:
    vm::Vms &vms_;
    mem::MemCtrl &mc_;
    // Order matters: exec_ consumes policy_, pipeline_ consumes both.
    PolicyEngine policy_;
    ExecEngine exec_;
    HotPagePipeline pipeline_;
    bool started_ = false;
};

} // namespace hopp::core
