/**
 * @file
 * The adaptive three-tier prefetch algorithms (§III-D):
 *
 *  - SSP: Simple-Stream-based Prefetch — majority (dominant) stride
 *    over the stream's stride history;
 *  - LSP: Ladder-Stream-based Prefetch — Algorithm 1: repetitive
 *    tread+rise spatial patterns;
 *  - RSP: Ripple-Stream-based Prefetch — Algorithm 2: net stride-1
 *    progress under bounded out-of-order distortion.
 *
 * Applied in order SSP -> LSP -> RSP; the first identification wins.
 */

#pragma once

#include <cstdint>
#include <optional>

#include "hopp/stt.hh"

namespace hopp::core
{

/** Which tier identified a stream. */
enum class Tier : std::uint8_t
{
    Ssp = 0,
    Lsp = 1,
    Rsp = 2,
    Mkv = 3, //!< correlation (Markov) tier — §III-D's ML direction
};

/** Number of tiers (array sizing). */
inline constexpr unsigned tierCount = 4;

/** Tier enable mask bits (Fig. 18-20 ablations). */
namespace tiers
{
inline constexpr unsigned ssp = 1u << 0;
inline constexpr unsigned lsp = 1u << 1;
inline constexpr unsigned rsp = 1u << 2;
inline constexpr unsigned all = ssp | lsp | rsp;

/** The optional correlation tier; not part of `all` (paper default). */
inline constexpr unsigned markov = 1u << 3;
} // namespace tiers

/**
 * A prediction parameterised by the prefetch offset i (§III-E):
 * the page to prefetch at offset i >= 1 is vpn(i) = base + i * step.
 * (For LSP, base = VPN_A + stride_target and step = pattern_stride with
 * i counting pattern repetitions; for SSP/RSP, base = VPN_A and step
 * is the stride.)
 */
struct Prediction
{
    Tier tier = Tier::Ssp;
    Vpn base;
    std::int64_t step = 0;

    /** Target VPN at offset i (i >= 1); nullopt when it underflows. */
    std::optional<Vpn>
    target(std::uint64_t i) const
    {
        std::int64_t reps = tier == Tier::Lsp
                                ? static_cast<std::int64_t>(i - 1)
                                : static_cast<std::int64_t>(i);
        std::int64_t delta = reps * step;
        if (delta < 0 &&
            static_cast<std::uint64_t>(-delta) > base - Vpn{})
            return std::nullopt;
        return offsetBy(base, delta);
    }
};

/** SSP: dominant stride (>= L/2 occurrences) or nullopt. */
std::optional<Prediction> runSsp(const StreamView &view);

/** LSP (Algorithm 1): ladder pattern or nullopt. */
std::optional<Prediction> runLsp(const StreamView &view);

/** RSP (Algorithm 2): ripple stream (with max_stride=2) or nullopt. */
std::optional<Prediction> runRsp(const StreamView &view);

/** Run the enabled tiers in SSP -> LSP -> RSP order. */
std::optional<Prediction> runThreeTier(const StreamView &view,
                                       unsigned tier_mask = tiers::all);

} // namespace hopp::core

