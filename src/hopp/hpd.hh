/**
 * @file
 * Hot Page Detection (HPD) module (§III-B, Figure 5).
 *
 * A small 16-way x 4-set table in the memory controller that converts
 * cacheline-granular LLC-miss READs into page-granular hot-page
 * extractions: a page is extracted once it accumulates N read misses,
 * and its send bit suppresses repeated extraction until the entry is
 * evicted. WRITEs (including RDMA DMA fills) are ignored (§III-B).
 */

#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hh"
#include "mem/set_assoc.hh"

namespace hopp::core
{

/** HPD geometry and threshold (paper defaults). */
struct HpdConfig
{
    /** Sets; the low log2(sets) PPN bits index the table. */
    std::size_t sets = 4;

    /** Ways per set; sets x ways pages tracked concurrently (64). */
    std::size_t ways = 16;

    /** Read accesses before a page is declared hot (N, default 8). */
    unsigned threshold = 8;
};

/** HPD event counters. */
struct HpdStats
{
    std::uint64_t reads = 0;       //!< read misses observed
    std::uint64_t writesIgnored = 0;
    std::uint64_t hotPages = 0;    //!< extractions emitted
    std::uint64_t suppressed = 0;  //!< drops due to the send bit
    std::uint64_t evictions = 0;   //!< table replacements

    /** Table II's ratio: hot pages extracted per read access. */
    double
    hotRatio() const
    {
        return reads ? static_cast<double>(hotPages) /
                           static_cast<double>(reads)
                     : 0.0;
    }
};

/**
 * The HPD table.
 */
class Hpd
{
  public:
    explicit Hpd(const HpdConfig &cfg)
        : cfg_(cfg), table_(cfg.sets, cfg.ways)
    {
    }

    /**
     * Feed one MC access.
     * @return the PPN of a newly detected hot page, if any.
     */
    std::optional<Ppn>
    access(PhysAddr pa, bool is_write)
    {
        if (is_write) {
            ++stats_.writesIgnored;
            return std::nullopt;
        }
        ++stats_.reads;
        Ppn ppn = pageOf(pa);
        // One combined way scan for probe + fill (identical hit/victim
        // behaviour to touch() + insert(), see SetAssocCache); the HPD
        // sits behind every LLC miss, so the scan count shows.
        auto r = table_.probeInsert(ppn, Entry{1, false});
        if (r.hit) {
            Entry *e = r.value;
            if (e->sent) {
                ++stats_.suppressed;
                return std::nullopt;
            }
            if (++e->count >= cfg_.threshold) {
                e->sent = true;
                ++stats_.hotPages;
                return ppn;
            }
            return std::nullopt;
        }
        if (r.evicted)
            ++stats_.evictions;
        if (cfg_.threshold <= 1) {
            // Degenerate configuration: every first touch is hot.
            r.value->sent = true;
            ++stats_.hotPages;
            return ppn;
        }
        return std::nullopt;
    }

    /**
     * Drop the entry of a frame. Wired to the PTE-clear signal the MC
     * already receives for RPT maintenance (§III-C): when a frame is
     * unmapped and recycled for a different page, its stale send bit
     * must not suppress detection of the new page.
     */
    void invalidate(Ppn ppn) { table_.erase(ppn); }

    /** Event counters. */
    const HpdStats &stats() const { return stats_; }

    /** Pages currently tracked. */
    std::size_t tracked() const { return table_.size(); }

    /** Configuration. */
    const HpdConfig &config() const { return cfg_; }

    /** Reset counters (not table contents). */
    void resetStats() { stats_ = HpdStats{}; }

  private:
    struct Entry
    {
        unsigned count = 0;
        bool sent = false;
    };

    HpdConfig cfg_;
    mem::SetAssocCache<Entry, Ppn> table_;
    HpdStats stats_;
};

} // namespace hopp::core

