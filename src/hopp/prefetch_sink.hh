/**
 * @file
 * The interface the training framework issues prefetch requests
 * through. Live simulation plugs in ExecEngine (RDMA reads + PTE
 * injection via the VMS); trace replay plugs in an accounting-only
 * sink. Keeping the trainer on this seam is what lets the entire
 * MC-side pipeline (HPD → RPT cache → ring → STT → trainer) run
 * without a VMS behind it.
 */

#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.hh"
#include "hopp/algorithms.hh"

namespace hopp::core
{

/** Receiver of the trainer's prefetch decisions. */
class PrefetchSink
{
  public:
    virtual ~PrefetchSink() = default;

    /** Request a prefetch of (pid, vpn) on behalf of a stream. */
    virtual void request(Pid pid, Vpn vpn, std::uint64_t stream_id,
                         Tier tier, Tick now) = 0;

    /**
     * Bundle up to @p count consecutive pages from @p vpn into one
     * transfer. @return pages actually bundled.
     */
    virtual unsigned requestBatch(Pid pid, Vpn vpn, unsigned count,
                                  std::uint64_t stream_id, Tier tier,
                                  Tick now) = 0;

    /** Prefetches currently in flight (observability gauge). */
    virtual std::size_t outstanding() const { return 0; }
};

} // namespace hopp::core
