#include "hopp/hopp_system.hh"

#include <algorithm>

#include "obs/blackbox.hh"
#include "obs/profiler.hh"
#include "prefetch/prefetcher.hh"

namespace hopp::core
{

HoppSystem::HoppSystem(sim::EventQueue &eq, vm::Vms &vms,
                       mem::MemCtrl &mc, const HoppConfig &cfg)
    : eq_(eq), vms_(vms), mc_(mc), cfg_(cfg), ring_(cfg.ringCapacity),
      stt_(cfg.stt), policy_(cfg.policy), exec_(vms, policy_),
      trainer_(stt_, policy_, exec_, cfg.tierMask, cfg.batch,
               cfg.markov)
{
    hopp_assert(cfg_.channels >= 1, "need at least one channel");
    hopp_assert((cfg_.channels & (cfg_.channels - 1)) == 0,
                "channel count must be a power of two");
    HpdConfig hpd_cfg = cfg_.hpd;
    if (cfg_.channelInterleaved && cfg_.scaleThresholdWithChannels &&
        cfg_.channels > 1) {
        // §III-B: with interleaving every MC sees only 1/channels of a
        // page's lines, so N must shrink to keep extraction timely.
        hpd_cfg.threshold =
            std::max(1u, cfg_.hpd.threshold / cfg_.channels);
    }
    // Reserve up front: RptCache holds reference members, so it is
    // move-constructible but not assignable — the vectors must never
    // relocate after this.
    hpds_.reserve(cfg_.channels);
    rptCaches_.reserve(cfg_.channels);
    for (unsigned c = 0; c < cfg_.channels; ++c) {
        hpds_.emplace_back(hpd_cfg);
        rptCaches_.emplace_back(rpt_, mc.dram(), cfg_.rptCache);
    }
    warmPruneAt_ = cfg_.warmEntriesCap;
}

unsigned
HoppSystem::channelOf(PhysAddr pa) const
{
    if (cfg_.channels == 1)
        return 0;
    // Interleaved: consecutive cachelines round-robin the channels.
    // Non-interleaved: a whole page lives in one channel.
    // Channel steering hashes the line/frame number's low bits.
    std::uint64_t unit = cfg_.channelInterleaved
                             ? lineOf(pa)
                             : pageOf(pa).raw(); // hopp-lint: allow(raw)
    return static_cast<unsigned>(unit & (cfg_.channels - 1));
}

HpdStats
HoppSystem::hpdTotals() const
{
    HpdStats total;
    for (const Hpd &h : hpds_) {
        const HpdStats &s = h.stats();
        total.reads += s.reads;
        total.writesIgnored += s.writesIgnored;
        total.hotPages += s.hotPages;
        total.suppressed += s.suppressed;
        total.evictions += s.evictions;
    }
    return total;
}

void
HoppSystem::start()
{
    hopp_assert(!started_, "HoPP already started");
    started_ = true;
    // Initial RPT build: traverse all existing page tables (§III-C).
    vms_.pageTable().forEachPresent(
        [this](Pid pid, Vpn vpn, const vm::PageInfo &pi) {
            rpt_.store(pi.ppn, RptEntry{pid, vpn, pi.shared,
                                        static_cast<std::uint8_t>(
                                            pi.huge ? 1 : 0)});
        });
    mc_.attach(this);
    vms_.addPteHook(this);
    vms_.addListener(this);
    if (cfg_.evictionAdvisor)
        vms_.setEvictionAdvisor(this);
}

bool
HoppSystem::keepWarm(Pid pid, Vpn vpn, Tick now)
{
    // Recency alone would pin every page of a hot stream; require
    // *repeated* hotness within the window, which only reuse-heavy
    // pages (graph vertex sets, recursion working sets) exhibit.
    const Hotness *h = lastHot_.find(vm::pageKey(pid, vpn));
    if (!h)
        return false;
    return h->prev != Tick{} && now - h->last < cfg_.warmWindow &&
           h->last - h->prev < cfg_.warmWindow;
}

void
HoppSystem::onMcAccess(PhysAddr pa, bool is_write, Tick now)
{
    unsigned channel = channelOf(pa);
    auto hot = hpds_[channel].access(pa, is_write);
    if (!hot)
        return;
    auto entry = rptCaches_[channel].lookup(*hot);
    if (!entry) {
        // Frame not (or no longer) mapped: nothing to tell software.
        ++unmapped_;
        return;
    }
    HotPage hp;
    hp.pid = entry->pid;
    hp.vpn = entry->vpn;
    hp.ppn = *hot;
    hp.shared = entry->shared;
    hp.huge = entry->hugeBits != 0;
    hp.time = now;
    ring_.push(hp);
    ++hotPagesSeen_;
    if (trace_ && hotPagesSeen_ % 64 == 0) {
        trace_->counter("hopp", "hot_pages", now, hotPagesSeen_);
        trace_->counter("hopp", "rpt_unmapped", now, unmapped_);
        trace_->counter("hopp", "ring_occupancy", now, ring_.size());
    }
    mc_.dram().recordTraffic(mem::TrafficSource::HotPageWrite,
                             hotPageRecordBytes);
    if (!drainScheduled_) {
        drainScheduled_ = true;
        Tick when = std::max(now, eq_.now()) + cfg_.trainerDelay;
        eq_.schedule(when, [this] { drainRing(); });
    }
}

void
HoppSystem::drainRing()
{
    HOPP_PROF(HoppDrain);
    drainScheduled_ = false;
    // The drain runs inside one event callback, so eq_.now() is fixed
    // for its duration and the B/E pair below is trivially balanced.
    std::uint64_t drained = ring_.size();
    if (drained != 0) {
        // Black box: one entry per drain batch (a = batch size).
        obs::blackbox().record(obs::BbKind::HoppDrain, eq_.now(), 0,
                               drained, 0);
    }
    if (trace_ && drained)
        trace_->begin("hopp", "trainer.drain", eq_.now(),
                      obs::track::hopp);
    while (auto hp = ring_.pop()) {
        if (cfg_.evictionAdvisor) {
            Hotness &h = lastHot_[vm::pageKey(hp->pid, hp->vpn)];
            h.prev = h.last;
            h.last = hp->time;
            if (lastHot_.size() >= warmPruneAt_)
                pruneWarm(eq_.now());
        }
        trainer_.onHotPage(*hp, eq_.now());
    }
    if (trace_ && drained) {
        trace_->end("hopp", "trainer.drain", eq_.now(),
                    obs::track::hopp);
        trace_->counter("hopp", "drain_batch", eq_.now(), drained);
        trace_->counter("hopp", "exec_outstanding", eq_.now(),
                        exec_.outstanding());
    }
}

void
HoppSystem::pruneWarm(Tick now)
{
    // Age-based prune (instead of a wholesale clear, which would
    // silently disable keepWarm for every stream at once): an entry
    // whose last hot extraction fell out of the warm window can never
    // satisfy keepWarm again until re-extracted, so dropping exactly
    // those is behaviour-preserving. One O(n) rebuild per pass.
    ++warmPrunePasses_;
    warmPruned_ += lastHot_.eraseIf(
        [this, now](std::uint64_t, const Hotness &h) {
            return now - h.last >= cfg_.warmWindow;
        });
    // If (nearly) everything is genuinely warm the table legitimately
    // exceeds the cap; back the next trigger off so a hot phase does
    // not rescan the table on every insertion.
    warmPruneAt_ = std::max(cfg_.warmEntriesCap, lastHot_.size() * 2);
}

void
HoppSystem::onPteSet(Pid pid, Vpn vpn, Ppn ppn, bool shared, bool huge,
                     Tick)
{
    RptEntry entry{pid, vpn, shared,
                   static_cast<std::uint8_t>(huge ? 1 : 0)};
    if (cfg_.channelInterleaved) {
        // Any channel's HPD can extract this page: every MC's RPT
        // cache receives the update.
        for (RptCache &cache : rptCaches_)
            cache.update(ppn, entry);
    } else {
        rptCaches_[channelOf(pageBase(ppn))].update(ppn, entry);
    }
}

void
HoppSystem::onPteClear(Pid, Vpn, Ppn ppn, Tick)
{
    if (cfg_.channelInterleaved) {
        for (unsigned c = 0; c < cfg_.channels; ++c) {
            rptCaches_[c].invalidate(ppn);
            // The frame will be recycled: a stale send bit must not
            // suppress hot-page detection of its next tenant.
            hpds_[c].invalidate(ppn);
        }
    } else {
        unsigned c = channelOf(pageBase(ppn));
        rptCaches_[c].invalidate(ppn);
        hpds_[c].invalidate(ppn);
    }
}

void
HoppSystem::onPrefetchCompleted(Pid pid, Vpn vpn, vm::Origin o, Tick,
                                bool)
{
    if (o == prefetch::origin::hopp)
        exec_.onCompleted(pid, vpn);
}

void
HoppSystem::onPrefetchHit(Pid pid, Vpn vpn, vm::Origin o, Tick ready_at,
                          Tick hit_at, bool)
{
    if (o == prefetch::origin::hopp)
        exec_.onHit(pid, vpn, ready_at, hit_at);
}

void
HoppSystem::onPrefetchEvicted(Pid pid, Vpn vpn, vm::Origin o, Tick)
{
    if (o == prefetch::origin::hopp)
        exec_.onEvicted(pid, vpn);
}

void
HoppSystem::resetStats()
{
    for (unsigned c = 0; c < cfg_.channels; ++c) {
        hpds_[c].resetStats();
        rptCaches_[c].resetStats();
    }
    stt_.resetStats();
    trainer_.resetStats();
    policy_.resetStats();
    exec_.resetStats();
    ring_.resetStats();
    unmapped_ = 0;
    hotPagesSeen_ = 0;
    warmPruned_ = 0;
    warmPrunePasses_ = 0;
}

} // namespace hopp::core
