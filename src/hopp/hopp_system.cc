#include "hopp/hopp_system.hh"

#include "prefetch/prefetcher.hh"

namespace hopp::core
{

HoppSystem::HoppSystem(sim::EventQueue &eq, vm::Vms &vms,
                       mem::MemCtrl &mc, const HoppConfig &cfg)
    : vms_(vms), mc_(mc), policy_(cfg.policy), exec_(vms, policy_),
      pipeline_(eq, mc.dram(), policy_, exec_, cfg)
{
}

void
HoppSystem::start()
{
    hopp_assert(!started_, "HoPP already started");
    started_ = true;
    // Initial RPT build: traverse all existing page tables (§III-C).
    vms_.pageTable().forEachPresent(
        [this](Pid pid, Vpn vpn, const vm::PageInfo &pi) {
            pipeline_.rpt().store(
                pi.ppn, RptEntry{pid, vpn, pi.shared,
                                 static_cast<std::uint8_t>(
                                     pi.huge ? 1 : 0)});
        });
    mc_.attach(this);
    vms_.addPteHook(this);
    vms_.addListener(this);
    if (config().evictionAdvisor)
        vms_.setEvictionAdvisor(this);
}

void
HoppSystem::onPrefetchCompleted(Pid pid, Vpn vpn, vm::Origin o, Tick,
                                bool)
{
    if (o == prefetch::origin::hopp)
        exec_.onCompleted(pid, vpn);
}

void
HoppSystem::onPrefetchHit(Pid pid, Vpn vpn, vm::Origin o, Tick ready_at,
                          Tick hit_at, bool)
{
    if (o == prefetch::origin::hopp)
        exec_.onHit(pid, vpn, ready_at, hit_at);
}

void
HoppSystem::onPrefetchEvicted(Pid pid, Vpn vpn, vm::Origin o, Tick)
{
    if (o == prefetch::origin::hopp)
        exec_.onEvicted(pid, vpn);
}

void
HoppSystem::resetStats()
{
    pipeline_.resetStats();
    policy_.resetStats();
    exec_.resetStats();
}

} // namespace hopp::core
