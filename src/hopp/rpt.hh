/**
 * @file
 * Reverse Page Table (RPT) and its MC-side cache (§III-C, Figure 6).
 *
 * The RPT maps PPN -> (PID, VPN, shared flag, huge flags) in a
 * reserved, uncached DRAM area (64-bit entries; 0.17% of physical
 * memory). The MC holds a small 16-way RPT cache through which *all*
 * RPT reads and writes pass, so no separate coherence is needed; the
 * DRAM copy is updated lazily on dirty write-back.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/types.hh"
#include "mem/dram.hh"
#include "mem/set_assoc.hh"

namespace hopp::check
{
class Access; // invariant-checker introspection (src/check)
}

namespace hopp::core
{

/** One RPT entry: 16-bit PID + 40-bit VPN + flags = 64 bits. */
struct RptEntry
{
    Pid pid;
    Vpn vpn;
    bool shared = false;
    std::uint8_t hugeBits = 0; //!< 2-bit huge-page flag (§III-C)
};

/**
 * The in-DRAM RPT (reserved area emulation).
 */
class Rpt
{
  public:
    /** Install or update an entry (initial build / write-back). */
    void
    store(Ppn ppn, const RptEntry &e)
    {
        entries_[ppn] = e;
    }

    /** Remove an entry. */
    void erase(Ppn ppn) { entries_.erase(ppn); }

    /** Read an entry. */
    std::optional<RptEntry>
    load(Ppn ppn) const
    {
        auto it = entries_.find(ppn);
        if (it == entries_.end())
            return std::nullopt;
        return it->second;
    }

    /** Live entries (= mapped frames). */
    std::size_t size() const { return entries_.size(); }

    /** DRAM bytes the table occupies (8 B per frame). */
    std::uint64_t bytes() const { return entries_.size() * 8; }

  private:
    std::unordered_map<Ppn, RptEntry> entries_;
};

/** RPT cache geometry. */
struct RptCacheConfig
{
    /** Cache capacity in bytes (64 KB default, Table III). */
    std::uint64_t capacityBytes = 64 << 10;

    /** Associativity. */
    std::size_t ways = 16;

    /** Entry footprint (64-bit packed entry). */
    std::uint64_t entryBytes = 8;

    /** DRAM burst transferred on a cache miss (one cacheline). */
    std::uint64_t missFillBytes = 64;
};

/** RPT cache counters. */
struct RptCacheStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t missUnmapped = 0; //!< DRAM RPT had no entry either
    std::uint64_t updates = 0;      //!< PTE-hook installs
    std::uint64_t invalidates = 0;  //!< PTE-hook clears
    std::uint64_t writebacks = 0;   //!< dirty evictions to DRAM

    /** Table III's hit rate. */
    double
    hitRate() const
    {
        return lookups ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
    }
};

/**
 * The MC-side RPT cache. All maintenance (kernel PTE hooks) and all
 * queries (hot-page extraction) go through here; DRAM traffic for
 * misses and write-backs is charged to the Table V counters.
 */
class RptCache
{
  public:
    RptCache(Rpt &rpt, mem::Dram &dram, const RptCacheConfig &cfg = {});

    /**
     * PPN -> (PID, VPN) query on behalf of a hot-page extraction.
     * @return nullopt when neither the cache nor the DRAM RPT knows
     *         the frame (e.g. it was just unmapped).
     */
    std::optional<RptEntry> lookup(Ppn ppn);

    /** set_pte/set_pmd hook: install or refresh a mapping. */
    void update(Ppn ppn, const RptEntry &e);

    /** pte_clear/pmd_clear hook: drop a mapping. */
    void invalidate(Ppn ppn);

    /** Counters. */
    const RptCacheStats &stats() const { return stats_; }

    /** Entries the cache can hold. */
    std::size_t capacityEntries() const { return cache_.capacity(); }

    /** Reset counters (not contents). */
    void resetStats() { stats_ = RptCacheStats{}; }

  private:
    friend class hopp::check::Access;

    struct Line
    {
        RptEntry entry;
        bool dirty = false;
    };

    void writeback(Ppn ppn, const Line &line);

    Rpt &rpt_;
    mem::Dram &dram_;
    RptCacheConfig cfg_;
    mem::SetAssocCache<Line, Ppn> cache_;
    RptCacheStats stats_;
};

} // namespace hopp::core

