/**
 * @file
 * The MC-side HoPP pipeline (Figure 4's hardware plane plus the
 * trainer): per-channel HPD tables and RPT caches tapped into the
 * memory-access stream, the reserved-DRAM hot-page ring, the STT, and
 * the training loop that turns hot pages into prefetch requests
 * through a PrefetchSink.
 *
 * Everything here is driven purely by (access, PTE-event, tick)
 * streams — there is no VMS reference — so the identical pipeline
 * serves both live simulation (HoppSystem feeds it from the machine's
 * MC and page-table hooks, ExecEngine as the sink) and trace replay
 * (ReplayEngine feeds it decoded records, an accounting sink). That
 * one-pipeline property is the replay fidelity contract: a recorded
 * stream replayed through this class reproduces the live run's
 * MC-side statistics byte for byte (DESIGN.md §15).
 */

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/flat_map.hh"
#include "hopp/hot_page.hh"
#include "hopp/hpd.hh"
#include "hopp/markov.hh"
#include "hopp/policy.hh"
#include "hopp/prefetch_sink.hh"
#include "hopp/rpt.hh"
#include "hopp/stt.hh"
#include "hopp/trainer.hh"
#include "mem/dram.hh"
#include "obs/tracer.hh"
#include "sim/event_queue.hh"

namespace hopp::core
{

/** Assembly-level configuration of the whole HoPP system. */
struct HoppConfig
{
    HpdConfig hpd;
    RptCacheConfig rptCache;
    SttConfig stt;
    PolicyConfig policy;

    /** Enabled prefetch tiers (Fig. 18-20 ablations). */
    unsigned tierMask = tiers::all;

    /**
     * Memory channels (§III-B "impact of multiple memory channels").
     * Each channel's MC carries its own HPD table and RPT cache; the
     * prefetch training framework merges (non-interleaved) or
     * de-duplicates (interleaved) their hot-page outputs.
     */
    unsigned channels = 1;

    /**
     * Interleaved channels: consecutive cachelines of a page live in
     * distinct channels, so each HPD sees only 64/channels lines of a
     * page — the paper notes N must shrink accordingly.
     */
    bool channelInterleaved = true;

    /**
     * Divide the HPD threshold by the channel count under
     * interleaving, as §III-B prescribes ("we need to reduce N").
     */
    bool scaleThresholdWithChannels = true;

    /** Huge-batch prefetching of long streams (§IV extension). */
    BatchConfig batch;

    /**
     * Correlation (Markov) tier parameters; enable it by adding
     * tiers::markov to tierMask. The §III-D "ML-based designs enabled
     * by full trace" direction.
     */
    MarkovConfig markov;

    /**
     * Use the hot-page trace to advise kernel reclaim (§IV: improving
     * page eviction with full memory traces).
     */
    bool evictionAdvisor = false;

    /** Pages hot within this window are kept from eviction. */
    Duration warmWindow = 2'000'000; // 2 ms

    /**
     * Advisor hotness-table size that triggers an age-based prune:
     * entries whose last hot extraction fell out of warmWindow are
     * dropped (they can no longer satisfy keepWarm), fresh ones
     * survive. Sized so prunes are rare outside adversarial sweeps.
     */
    std::size_t warmEntriesCap = 1 << 20;

    /** Latency from hot-page extraction to software processing. */
    Duration trainerDelay = 500;

    /** Hot-page ring capacity (reserved DRAM area). */
    std::size_t ringCapacity = 1 << 16;
};

/**
 * The MC-side pipeline: HPD → RPT cache → hot-page ring → STT →
 * trainer → PrefetchSink, plus the eviction-advisor hotness table.
 *
 * The pipeline splits along HoPP's own hardware/software boundary.
 * The *frontend* (per-channel HPD tables, the RPT and its caches, the
 * hot-page ring) is fixed hardware: its behaviour depends only on the
 * access/PTE stream and the hardware config. The *backend* (STT,
 * trainer, policy, sink) is the software half. Because the frontend
 * never observes the backend, one frontend can feed several backends
 * — that is how trace replay sweeps software policies in a single
 * pass over a recorded stream (addReplayBackend below): every cell
 * sees byte-identical frontend statistics, and each cell's trainer
 * stats match what a solo run of that cell would produce.
 */
class HotPagePipeline
{
  public:
    /**
     * @p dram is charged the HoPP hardware traffic (hot-page ring
     * writes, RPT-cache fills and write-backs); @p policy and @p sink
     * are owned by the caller — the policy feedback loop (timeliness)
     * is live-simulation-only and deliberately outside the pipeline.
     */
    HotPagePipeline(sim::EventQueue &eq, mem::Dram &dram,
                    PolicyEngine &policy, PrefetchSink &sink,
                    const HoppConfig &cfg);

    // --- hardware data path -------------------------------------
    void onMcAccess(PhysAddr pa, bool is_write, Tick now);

    // --- RPT maintenance (§V: set_pte_at / pte_clear) ------------
    void onPteSet(Pid pid, Vpn vpn, Ppn ppn, bool shared, bool huge,
                  Tick now);
    void onPteClear(Pid pid, Vpn vpn, Ppn ppn, Tick now);

    // --- trace-informed eviction advice (§IV) --------------------
    bool keepWarm(Pid pid, Vpn vpn, Tick now);

    /** Channel an MC access routes to. */
    unsigned channelOf(PhysAddr pa) const;

    /** Component access for tests and benches (channel 0 views). */
    Hpd &hpd() { return hpds_[0]; }
    Rpt &rpt() { return rpt_; }
    RptCache &rptCache() { return rptCaches_[0]; }

    /** Per-channel hardware (size = config().channels). */
    Hpd &hpd(unsigned channel) { return hpds_.at(channel); }
    RptCache &rptCache(unsigned channel)
    {
        return rptCaches_.at(channel);
    }

    /** Aggregate HPD statistics over all channels. */
    HpdStats hpdTotals() const;

    /** The configuration in effect. */
    const HoppConfig &config() const { return cfg_; }
    Stt &stt() { return stt(0); }
    Trainer &trainer() { return backends_[0]->trainer; }
    HotPageRing &ring() { return ring_; }

    /**
     * Attach one more software backend (STT + trainer) to the shared
     * hardware frontend. @p soft supplies the software half of the
     * cell's configuration (stt, tierMask, batch, markov); the
     * hardware half (hpd, rptCache, channels, ring) is fixed by this
     * pipeline and the caller must not vary it across cells. Every
     * ring drain feeds every backend, so each backend's trainer sees
     * exactly the hot-page stream a solo pipeline would. Backends
     * must be added before the first access. @return backend index.
     */
    std::size_t addReplayBackend(PolicyEngine &policy,
                                 PrefetchSink &sink,
                                 const HoppConfig &soft);

    /** Number of software backends (1 unless fanned out). */
    std::size_t backendCount() const { return backends_.size(); }
    Stt &stt(std::size_t backend)
    {
        return *sttGroups_[backends_.at(backend)->sttGroup].stt;
    }
    Trainer &trainer(std::size_t backend)
    {
        return backends_.at(backend)->trainer;
    }

    /** Hot pages whose PPN the RPT could not map (dropped). */
    std::uint64_t unmappedHotPages() const { return unmapped_; }

    /** Live advisor hotness entries (gauge). */
    std::uint64_t warmEntriesLive() const { return lastHot_.size(); }

    /** Stale advisor entries aged out by pruning (counter). */
    std::uint64_t warmPruned() const { return warmPruned_; }

    /** Advisor prune passes executed (counter). */
    std::uint64_t warmPrunePasses() const { return warmPrunePasses_; }

    /**
     * Reset every statistic the pipeline owns: per-channel HPD and
     * RPT-cache counters, STT/trainer stats, ring drop counters, and
     * the unmapped/advisor-prune totals. Structural state — the RPT,
     * the advisor hotness table, stream state — is untouched:
     * resetting stats must not change simulated behaviour.
     */
    void resetStats();

    /**
     * Attach the flight recorder: ring-drain batch spans on the HoPP
     * software track, hot-page extraction counters and RPT-lookup
     * outcome counters. nullptr detaches.
     */
    void setTracer(obs::Tracer *tracer) { trace_ = tracer; }

  private:
    void drainRing();
    void pruneWarm(Tick now);

    /**
     * One shared stream table: backends whose SttConfigs are equal see
     * byte-identical STT behaviour on the shared hot-page stream, so
     * they share one table and the per-hot-page clustering scan runs
     * once per distinct config rather than once per backend. The view
     * member is drain-loop scratch: the feed result every trainer of
     * the group consumes for the current hot page.
     */
    struct SttGroup
    {
        SttConfig cfg;
        std::unique_ptr<Stt> stt;
        std::optional<StreamView> view;
    };

    /**
     * One software cell: the trainer, bound to its group's shared STT.
     * Held by unique_ptr because Trainer keeps references — it must
     * never relocate.
     */
    struct Backend
    {
        Backend(Stt &stt, std::size_t group, PolicyEngine &policy,
                PrefetchSink &sink, const HoppConfig &soft)
            : trainer(stt, policy, sink, soft.tierMask, soft.batch,
                      soft.markov),
              sttGroup(group)
        {
        }

        Trainer trainer;
        std::size_t sttGroup;
    };

    /** Index of the group serving @p cfg, creating it if new. */
    std::size_t sttGroupFor(const SttConfig &cfg);

    sim::EventQueue &eq_;
    mem::Dram &dram_;
    HoppConfig cfg_;
    // By-value per-channel hardware: channel dispatch indexes straight
    // into contiguous storage instead of chasing unique_ptrs.
    std::vector<Hpd> hpds_;           // one per channel
    Rpt rpt_;
    std::vector<RptCache> rptCaches_; // one per MC
    HotPageRing ring_;
    PrefetchSink &sink_;
    std::vector<SttGroup> sttGroups_;
    std::vector<std::unique_ptr<Backend>> backends_;
    bool drainScheduled_ = false;
    std::uint64_t unmapped_ = 0;
    obs::Tracer *trace_ = nullptr;
    std::uint64_t hotPagesSeen_ = 0;

    /** Advisor state: last two hot-extraction times per page. */
    struct Hotness
    {
        Tick last;
        Tick prev;
    };

    /// Keyed by pageKey(pid, vpn); open-addressed so the per-hot-page
    /// advisor update is a flat probe, not a node allocation.
    FlatU64Map<Hotness> lastHot_;
    std::uint64_t warmPruned_ = 0;
    std::uint64_t warmPrunePasses_ = 0;
    /// Next prune trigger; starts at cfg_.warmEntriesCap and backs off
    /// when the table is genuinely warm (see pruneWarm).
    std::size_t warmPruneAt_ = 0;
};

/**
 * The MC-side statistics the replay fidelity contract covers, as a
 * deterministic flat JSON document: HPD totals, per-channel RPT-cache
 * counters, ring, STT, trainer predictions (batchesIssued excluded —
 * it depends on VMS bundling feedback), and the unmapped-drop count.
 * A recorded run and its replay must produce byte-identical output.
 * @p backend selects the software cell: the frontend keys are shared
 * (byte-identical across cells by construction); the STT/trainer keys
 * come from that cell.
 */
std::string mcSideStatsJson(HotPagePipeline &p,
                            std::size_t backend = 0);

} // namespace hopp::core
