#include "hopp/pipeline.hh"

#include <algorithm>
#include <cstdio>

#include "obs/blackbox.hh"
#include "obs/profiler.hh"
#include "vm/page.hh"

namespace hopp::core
{

HotPagePipeline::HotPagePipeline(sim::EventQueue &eq, mem::Dram &dram,
                                 PolicyEngine &policy,
                                 PrefetchSink &sink,
                                 const HoppConfig &cfg)
    : eq_(eq), dram_(dram), cfg_(cfg), ring_(cfg.ringCapacity),
      sink_(sink)
{
    std::size_t group = sttGroupFor(cfg_.stt);
    backends_.push_back(std::make_unique<Backend>(
        *sttGroups_[group].stt, group, policy, sink, cfg_));
    hopp_assert(cfg_.channels >= 1, "need at least one channel");
    hopp_assert((cfg_.channels & (cfg_.channels - 1)) == 0,
                "channel count must be a power of two");
    HpdConfig hpd_cfg = cfg_.hpd;
    if (cfg_.channelInterleaved && cfg_.scaleThresholdWithChannels &&
        cfg_.channels > 1) {
        // §III-B: with interleaving every MC sees only 1/channels of a
        // page's lines, so N must shrink to keep extraction timely.
        hpd_cfg.threshold =
            std::max(1u, cfg_.hpd.threshold / cfg_.channels);
    }
    // Reserve up front: RptCache holds reference members, so it is
    // move-constructible but not assignable — the vectors must never
    // relocate after this.
    hpds_.reserve(cfg_.channels);
    rptCaches_.reserve(cfg_.channels);
    for (unsigned c = 0; c < cfg_.channels; ++c) {
        hpds_.emplace_back(hpd_cfg);
        rptCaches_.emplace_back(rpt_, dram, cfg_.rptCache);
    }
    warmPruneAt_ = cfg_.warmEntriesCap;
}

std::size_t
HotPagePipeline::sttGroupFor(const SttConfig &cfg)
{
    for (std::size_t i = 0; i < sttGroups_.size(); ++i) {
        if (sttGroups_[i].cfg == cfg)
            return i;
    }
    sttGroups_.push_back(
        SttGroup{cfg, std::make_unique<Stt>(cfg), std::nullopt});
    return sttGroups_.size() - 1;
}

std::size_t
HotPagePipeline::addReplayBackend(PolicyEngine &policy,
                                  PrefetchSink &sink,
                                  const HoppConfig &soft)
{
    // The frontend must not have run yet: a backend attached after the
    // first extraction would miss hot pages a solo run of its cell
    // would have seen, silently breaking the fidelity contract.
    hopp_assert(hotPagesSeen_ == 0 && ring_.pushed() == 0,
                "backends must be attached before the first access");
    std::size_t group = sttGroupFor(soft.stt);
    backends_.push_back(std::make_unique<Backend>(
        *sttGroups_[group].stt, group, policy, sink, soft));
    return backends_.size() - 1;
}

unsigned
HotPagePipeline::channelOf(PhysAddr pa) const
{
    if (cfg_.channels == 1)
        return 0;
    // Interleaved: consecutive cachelines round-robin the channels.
    // Non-interleaved: a whole page lives in one channel.
    // Channel steering hashes the line/frame number's low bits.
    std::uint64_t unit = cfg_.channelInterleaved
                             ? lineOf(pa)
                             : pageOf(pa).raw(); // hopp-lint: allow(raw)
    return static_cast<unsigned>(unit & (cfg_.channels - 1));
}

HpdStats
HotPagePipeline::hpdTotals() const
{
    HpdStats total;
    for (const Hpd &h : hpds_) {
        const HpdStats &s = h.stats();
        total.reads += s.reads;
        total.writesIgnored += s.writesIgnored;
        total.hotPages += s.hotPages;
        total.suppressed += s.suppressed;
        total.evictions += s.evictions;
    }
    return total;
}

bool
HotPagePipeline::keepWarm(Pid pid, Vpn vpn, Tick now)
{
    // Recency alone would pin every page of a hot stream; require
    // *repeated* hotness within the window, which only reuse-heavy
    // pages (graph vertex sets, recursion working sets) exhibit.
    const Hotness *h = lastHot_.find(vm::pageKey(pid, vpn));
    if (!h)
        return false;
    return h->prev != Tick{} && now - h->last < cfg_.warmWindow &&
           h->last - h->prev < cfg_.warmWindow;
}

void
HotPagePipeline::onMcAccess(PhysAddr pa, bool is_write, Tick now)
{
    unsigned channel = channelOf(pa);
    auto hot = hpds_[channel].access(pa, is_write);
    if (!hot)
        return;
    auto entry = rptCaches_[channel].lookup(*hot);
    if (!entry) {
        // Frame not (or no longer) mapped: nothing to tell software.
        ++unmapped_;
        return;
    }
    HotPage hp;
    hp.pid = entry->pid;
    hp.vpn = entry->vpn;
    hp.ppn = *hot;
    hp.shared = entry->shared;
    hp.huge = entry->hugeBits != 0;
    hp.time = now;
    ring_.push(hp);
    ++hotPagesSeen_;
    if (trace_ && hotPagesSeen_ % 64 == 0) {
        trace_->counter("hopp", "hot_pages", now, hotPagesSeen_);
        trace_->counter("hopp", "rpt_unmapped", now, unmapped_);
        trace_->counter("hopp", "ring_occupancy", now, ring_.size());
    }
    dram_.recordTraffic(mem::TrafficSource::HotPageWrite,
                        hotPageRecordBytes);
    if (!drainScheduled_) {
        drainScheduled_ = true;
        Tick when = std::max(now, eq_.now()) + cfg_.trainerDelay;
        eq_.schedule(when, [this] { drainRing(); });
    }
}

void
HotPagePipeline::drainRing()
{
    HOPP_PROF(HoppDrain);
    drainScheduled_ = false;
    // The drain runs inside one event callback, so eq_.now() is fixed
    // for its duration and the B/E pair below is trivially balanced.
    std::uint64_t drained = ring_.size();
    if (drained != 0) {
        // Black box: one entry per drain batch (a = batch size).
        obs::blackbox().record(obs::BbKind::HoppDrain, eq_.now(), 0,
                               drained, 0);
    }
    if (trace_ && drained)
        trace_->begin("hopp", "trainer.drain", eq_.now(),
                      obs::track::hopp);
    while (auto hp = ring_.pop()) {
        if (cfg_.evictionAdvisor) {
            Hotness &h = lastHot_[vm::pageKey(hp->pid, hp->vpn)];
            h.prev = h.last;
            h.last = hp->time;
            if (lastHot_.size() >= warmPruneAt_)
                pruneWarm(eq_.now());
        }
        // Feed each distinct-config STT once; every backend of a
        // group trains on the same view — identical to each trainer
        // feeding a private table, minus the per-backend scan.
        for (auto &g : sttGroups_)
            g.view = g.stt->feed(hp->pid, hp->vpn);
        for (auto &backend : backends_) {
            backend->trainer.onHotPage(
                *hp, sttGroups_[backend->sttGroup].view, eq_.now());
        }
    }
    if (trace_ && drained) {
        trace_->end("hopp", "trainer.drain", eq_.now(),
                    obs::track::hopp);
        trace_->counter("hopp", "drain_batch", eq_.now(), drained);
        trace_->counter("hopp", "exec_outstanding", eq_.now(),
                        sink_.outstanding());
    }
}

void
HotPagePipeline::pruneWarm(Tick now)
{
    // Age-based prune (instead of a wholesale clear, which would
    // silently disable keepWarm for every stream at once): an entry
    // whose last hot extraction fell out of the warm window can never
    // satisfy keepWarm again until re-extracted, so dropping exactly
    // those is behaviour-preserving. One O(n) rebuild per pass.
    ++warmPrunePasses_;
    warmPruned_ += lastHot_.eraseIf(
        [this, now](std::uint64_t, const Hotness &h) {
            return now - h.last >= cfg_.warmWindow;
        });
    // If (nearly) everything is genuinely warm the table legitimately
    // exceeds the cap; back the next trigger off so a hot phase does
    // not rescan the table on every insertion.
    warmPruneAt_ = std::max(cfg_.warmEntriesCap, lastHot_.size() * 2);
}

void
HotPagePipeline::onPteSet(Pid pid, Vpn vpn, Ppn ppn, bool shared,
                          bool huge, Tick)
{
    RptEntry entry{pid, vpn, shared,
                   static_cast<std::uint8_t>(huge ? 1 : 0)};
    if (cfg_.channelInterleaved) {
        // Any channel's HPD can extract this page: every MC's RPT
        // cache receives the update.
        for (RptCache &cache : rptCaches_)
            cache.update(ppn, entry);
    } else {
        rptCaches_[channelOf(pageBase(ppn))].update(ppn, entry);
    }
}

void
HotPagePipeline::onPteClear(Pid, Vpn, Ppn ppn, Tick)
{
    if (cfg_.channelInterleaved) {
        for (unsigned c = 0; c < cfg_.channels; ++c) {
            rptCaches_[c].invalidate(ppn);
            // The frame will be recycled: a stale send bit must not
            // suppress hot-page detection of its next tenant.
            hpds_[c].invalidate(ppn);
        }
    } else {
        unsigned c = channelOf(pageBase(ppn));
        rptCaches_[c].invalidate(ppn);
        hpds_[c].invalidate(ppn);
    }
}

void
HotPagePipeline::resetStats()
{
    for (unsigned c = 0; c < cfg_.channels; ++c) {
        hpds_[c].resetStats();
        rptCaches_[c].resetStats();
    }
    for (auto &g : sttGroups_)
        g.stt->resetStats();
    for (auto &backend : backends_)
        backend->trainer.resetStats();
    ring_.resetStats();
    unmapped_ = 0;
    hotPagesSeen_ = 0;
    warmPruned_ = 0;
    warmPrunePasses_ = 0;
}

std::string
mcSideStatsJson(HotPagePipeline &p, std::size_t backend)
{
    std::string out;
    out.reserve(2048);
    char buf[96];
    auto put = [&](const char *key, std::uint64_t v, bool last = false) {
        std::snprintf(buf, sizeof(buf), "  \"%s\": %llu%s\n", key,
                      static_cast<unsigned long long>(v),
                      last ? "" : ",");
        out += buf;
    };
    out += "{\n";
    HpdStats hpd = p.hpdTotals();
    put("hpd_reads", hpd.reads);
    put("hpd_writes_ignored", hpd.writesIgnored);
    put("hpd_hot_pages", hpd.hotPages);
    put("hpd_suppressed", hpd.suppressed);
    put("hpd_evictions", hpd.evictions);
    for (unsigned c = 0; c < p.config().channels; ++c) {
        const RptCacheStats &rc = p.rptCache(c).stats();
        char key[64];
        auto putc = [&](const char *name, std::uint64_t v) {
            std::snprintf(key, sizeof(key), "rpt_cache.c%u.%s", c,
                          name);
            put(key, v);
        };
        putc("lookups", rc.lookups);
        putc("hits", rc.hits);
        putc("misses", rc.misses);
        putc("miss_unmapped", rc.missUnmapped);
        putc("updates", rc.updates);
        putc("invalidates", rc.invalidates);
        putc("writebacks", rc.writebacks);
    }
    put("ring_pushed", p.ring().pushed());
    put("ring_dropped", p.ring().dropped());
    const SttStats &stt = p.stt(backend).stats();
    put("stt_fed", stt.fed);
    put("stt_appended", stt.appended);
    put("stt_duplicates", stt.duplicates);
    put("stt_seeded", stt.seeded);
    put("stt_evicted", stt.evicted);
    put("stt_full_views", stt.fullViews);
    const TrainerStats &tr = p.trainer(backend).stats();
    put("trainer_hot_pages", tr.hotPages);
    put("trainer_pred_ssp", tr.predictions[0]);
    put("trainer_pred_lsp", tr.predictions[1]);
    put("trainer_pred_rsp", tr.predictions[2]);
    put("trainer_pred_mkv", tr.predictions[3]);
    put("trainer_no_pattern", tr.noPattern);
    put("unmapped_hot_pages", p.unmappedHotPages(), true);
    out += "}\n";
    return out;
}

} // namespace hopp::core
