#include "hopp/stt.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace hopp::core
{

Stt::Stt(const SttConfig &cfg) : cfg_(cfg), table_(cfg.entries)
{
    hopp_assert(cfg_.entries > 0, "STT needs entries");
    hopp_assert(cfg_.historyLen >= 4, "history too short to train");
    hopp_assert(cfg_.historyLen <= maxTrainHistory,
                "history exceeds the stack-scratch training cap");
    for (auto &e : table_) {
        e.vpns.reserve(cfg_.historyLen);
        e.strides.reserve(cfg_.historyLen - 1);
    }
}

std::size_t
Stt::liveStreams() const
{
    std::size_t n = 0;
    for (const auto &e : table_)
        n += e.valid;
    return n;
}

std::optional<StreamView>
Stt::append(Entry &e, Vpn vpn)
{
    e.lastUse = ++clock_;
    Vpn last = e.lastVpn;
    if (vpn == last) {
        // Repeated extraction of the same page (multi-channel dedup,
        // §III-B): refresh recency only.
        ++stats_.duplicates;
        return std::nullopt;
    }
    std::int64_t stride = signedDelta(last, vpn);
    if (e.vpns.size() == cfg_.historyLen) {
        e.vpns.erase(e.vpns.begin());
        e.strides.erase(e.strides.begin());
    }
    e.vpns.push_back(vpn);
    e.strides.push_back(stride);
    e.lastVpn = vpn;
    ++e.length;
    ++stats_.appended;
    if (e.vpns.size() == cfg_.historyLen) {
        ++stats_.fullViews;
        return StreamView{e.pid, e.id, e.length, &e.vpns, &e.strides};
    }
    return std::nullopt;
}

std::optional<StreamView>
Stt::feed(Pid pid, Vpn vpn)
{
    ++stats_.fed;
    // Find the best matching stream: same PID and last VPN within
    // Δ_stream; prefer the closest last VPN.
    Entry *best = nullptr;
    std::uint64_t best_dist = ~std::uint64_t(0);
    Entry *lru = nullptr;
    for (auto &e : table_) {
        if (!e.valid) {
            // Prefer filling an empty slot over evicting.
            if (!lru || lru->valid)
                lru = &e;
            continue;
        }
        if (!lru || (lru->valid && e.lastUse < lru->lastUse))
            lru = &e;
        if (e.pid != pid)
            continue;
        std::uint64_t dist = vpn > e.lastVpn ? vpn - e.lastVpn
                                             : e.lastVpn - vpn;
        if (dist <= cfg_.streamDelta && dist < best_dist) {
            best = &e;
            best_dist = dist;
        }
    }
    if (best)
        return append(*best, vpn);

    // Seed a new stream in an invalid or LRU slot.
    hopp_assert(lru, "STT has no replaceable entry");
    if (lru->valid)
        ++stats_.evicted;
    ++stats_.seeded;
    lru->valid = true;
    lru->pid = pid;
    lru->id = nextId_++;
    lru->lastUse = ++clock_;
    lru->length = 1;
    lru->vpns.clear();
    lru->strides.clear();
    lru->vpns.push_back(vpn);
    lru->lastVpn = vpn;
    return std::nullopt;
}

} // namespace hopp::core
