/**
 * @file
 * Correlation (Markov) prefetcher over the hot-page trace — the
 * "advanced solutions like machine learning-based ones can also be
 * enabled by full trace" direction of §III-D, in the tradition of
 * Joseph & Grunwald's Markov predictors.
 *
 * The table records, per (PID, VPN), the most frequent successor hot
 * pages. Repeated irregular sequences — iterating a fixed edge list,
 * pointer chasing over a stable heap — produce confident successors
 * that no stride detector can see, while the fault-only view never
 * observes enough of the sequence to learn it at all.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mem/set_assoc.hh"
#include "vm/page.hh"

namespace hopp::core
{

/** Markov table knobs. */
struct MarkovConfig
{
    /** Table capacity in (page -> successors) entries. */
    std::size_t entries = 8192;

    /** Associativity of the table. */
    std::size_t ways = 8;

    /** Successor slots per entry. */
    static constexpr unsigned slots = 2;

    /** Observations before a successor is considered predictable. */
    std::uint16_t minCount = 2;

    /** Successor-chain depth followed per prediction. */
    unsigned chainDepth = 2;
};

/** Markov-table counters. */
struct MarkovStats
{
    std::uint64_t trained = 0;
    std::uint64_t replaced = 0;    //!< successor slot repurposed
    std::uint64_t predictions = 0; //!< pages returned by predict()
    std::uint64_t misses = 0;      //!< predict() with no entry
};

/**
 * The correlation table.
 */
class MarkovTable
{
  public:
    explicit MarkovTable(const MarkovConfig &cfg = {});

    /** Record the transition prev -> cur in pid's hot-page stream. */
    void train(Pid pid, Vpn prev, Vpn cur);

    /**
     * Predict the likely successor chain of (pid, vpn): the dominant
     * successor, its dominant successor, and so on up to @p depth
     * (cfg.chainDepth when 0), plus the runner-up of the first hop.
     */
    std::vector<Vpn> predict(Pid pid, Vpn vpn, unsigned depth = 0);

    /** Counters. */
    const MarkovStats &stats() const { return stats_; }

    /** Entries currently held. */
    std::size_t size() const { return table_.size(); }

  private:
    struct Entry
    {
        Vpn succ[MarkovConfig::slots] = {};
        std::uint16_t count[MarkovConfig::slots] = {0, 0};
    };

    /** Dominant successor of vpn, if confident. */
    bool dominant(Pid pid, Vpn vpn, Vpn &out);

    MarkovConfig cfg_;
    mem::SetAssocCache<Entry> table_;
    MarkovStats stats_;
};

} // namespace hopp::core

