/**
 * @file
 * Stream Training Table (STT, §III-D1, Figure 7).
 *
 * 64 entries, each a potential stream: a PID, the last L=16 VPNs
 * received for that stream (VPN_history) and the L-1 derived strides
 * (stride_history). A hot page joins an existing stream when its PID
 * matches and its VPN is within Δ_stream=64 pages of the stream's last
 * VPN (pages clustering); otherwise it seeds a new entry, evicting the
 * LRU one. Once a history fills, the adaptive three-tier algorithms
 * run on every subsequent append.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace hopp::check
{
class Access; // invariant-checker introspection (src/check)
}

namespace hopp::core
{

/**
 * Upper bound on SttConfig::historyLen: the three-tier algorithms
 * keep their per-view training scratch on the stack, sized by this
 * (they run once per full-view hot page per backend, so heap scratch
 * there is measurable across a policy fan-out).
 */
inline constexpr std::size_t maxTrainHistory = 64;

/** STT geometry (paper defaults). */
struct SttConfig
{
    /** Number of stream entries. */
    std::size_t entries = 64;

    /** History length L; larger L = stricter identification (at most
     *  maxTrainHistory). */
    unsigned historyLen = 16;

    /** Δ_stream: max |VPN - last VPN| for clustering into a stream. */
    std::uint64_t streamDelta = 64;

    /** Same geometry = same behaviour: backends with equal configs
     *  can share one table (HotPagePipeline's STT groups). */
    bool operator==(const SttConfig &) const = default;
};

/**
 * A read-only view of one full stream history handed to the prefetch
 * algorithms. vpns has L entries (oldest first); strides has L-1.
 */
struct StreamView
{
    Pid pid;
    std::uint64_t streamId = 0;

    /** Total pages ever appended to this stream (stream length). */
    std::uint64_t length = 0;

    const std::vector<Vpn> *vpns = nullptr;
    const std::vector<std::int64_t> *strides = nullptr;

    /** Newest VPN (VPN_A). */
    Vpn
    vpnA() const
    {
        return vpns->back();
    }

    /** Newest stride (stride_A). */
    std::int64_t
    strideA() const
    {
        return strides->back();
    }
};

/** STT counters. */
struct SttStats
{
    std::uint64_t fed = 0;
    std::uint64_t appended = 0;
    std::uint64_t duplicates = 0; //!< same VPN as the stream's last
    std::uint64_t seeded = 0;     //!< new entries allocated
    std::uint64_t evicted = 0;    //!< LRU entries recycled
    std::uint64_t fullViews = 0;  //!< histories ready for training
};

/**
 * The Stream Training Table.
 */
class Stt
{
  public:
    explicit Stt(const SttConfig &cfg = {});

    /**
     * Feed one hot page (PID, VPN).
     * @return a StreamView when the page extended a stream whose
     *         history is full (training should run), nullopt otherwise.
     *         The view aliases internal storage: use before next feed().
     */
    std::optional<StreamView> feed(Pid pid, Vpn vpn);

    /** Counters. */
    const SttStats &stats() const { return stats_; }

    /** Zero the counters (live streams are untouched). */
    void resetStats() { stats_ = SttStats{}; }

    /** Configuration. */
    const SttConfig &config() const { return cfg_; }

    /** Number of live stream entries. */
    std::size_t liveStreams() const;

  private:
    friend class hopp::check::Access;

    struct Entry
    {
        bool valid = false;
        Pid pid;
        std::uint64_t id = 0;
        std::uint64_t lastUse = 0;
        std::uint64_t length = 0; //!< pages appended over the lifetime
        /// Cached vpns.back(): the clustering scan in feed() reads
        /// every entry's last VPN, and an inline copy keeps that scan
        /// inside the contiguous entry array instead of chasing each
        /// entry's history vector.
        Vpn lastVpn;
        std::vector<Vpn> vpns;
        std::vector<std::int64_t> strides;
    };

    std::optional<StreamView> append(Entry &e, Vpn vpn);

    SttConfig cfg_;
    std::vector<Entry> table_;
    std::uint64_t clock_ = 0;
    std::uint64_t nextId_ = 1;
    SttStats stats_;
};

} // namespace hopp::core

