/**
 * @file
 * Prefetch policy engine (§III-E): two knobs per stream.
 *
 *  - Prefetch intensity: pages issued per hot page of an identified
 *    stream (1 by default; >1 compensates for a congested network).
 *  - Prefetch offset i: how far ahead to fetch. HoPP measures the
 *    timeliness T of every prefetched page (arrival -> first hit) and
 *    steers i so that T stays within [T_min, T_max]: too small a T
 *    means the page nearly arrived late (i *= 1+alpha); too large a T
 *    means local memory is occupied too early (i *= 1-alpha).
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace hopp::core
{

/**
 * The offsets to prefetch for one hot page: `intensity` consecutive
 * values starting at the stream's current i. Always a contiguous run,
 * so it is generated on the fly instead of materialized — offsets()
 * sits on the per-hot-page training path of every backend and must
 * not allocate.
 */
struct OffsetRange
{
    std::uint64_t first = 1;
    unsigned count = 1;

    struct iterator
    {
        std::uint64_t value;
        std::uint64_t operator*() const { return value; }
        iterator &
        operator++()
        {
            ++value;
            return *this;
        }
        bool
        operator!=(const iterator &o) const
        {
            return value != o.value;
        }
    };

    iterator begin() const { return {first}; }
    iterator end() const { return {first + count}; }
    std::size_t size() const { return count; }
    std::uint64_t front() const { return first; }
    std::uint64_t
    operator[](std::size_t k) const
    {
        return first + k;
    }
};

/** Policy knobs (paper defaults: alpha=0.2, i_max=1K, T in [40us,5ms]). */
struct PolicyConfig
{
    double alpha = 0.2;
    double offsetInit = 1.0;
    double offsetMax = 1024.0;
    Duration tMin = 40'000;    // 40 us
    Duration tMax = 5'000'000; // 5 ms
    unsigned intensity = 1;  // pages prefetched per hot page

    /**
     * Timeliness samples averaged per adjustment. Adjusting on every
     * sample is unstable: pages injected when the offset was small
     * keep reporting tiny T long after i has grown (stale feedback),
     * ratcheting i to its cap while every multiplicative jump skips
     * i*alpha pages. Epoch averaging dilutes stale samples.
     */
    unsigned adjustEpoch = 8;

    /** Disable offset adaptation (Fig. 22's fixed-offset ablation). */
    bool adaptive = true;
};

/** Policy counters. */
struct PolicyStats
{
    std::uint64_t feedbacks = 0;
    std::uint64_t increases = 0; //!< i grew (pages nearly late)
    std::uint64_t decreases = 0; //!< i shrank (pages too early)
};

/**
 * Per-stream offset adaptation.
 */
class PolicyEngine
{
  public:
    explicit PolicyEngine(const PolicyConfig &cfg = {}) : cfg_(cfg) {}

    /**
     * Offsets to prefetch for one hot page of a stream: `intensity`
     * consecutive offsets starting at the stream's current i.
     */
    OffsetRange
    offsets(std::uint64_t stream_id) const
    {
        double i = offsetOf(stream_id);
        auto first = static_cast<std::uint64_t>(i + 0.5);
        if (first < 1)
            first = 1;
        return OffsetRange{first, cfg_.intensity};
    }

    /** Timeliness feedback for one prefetched page of a stream. */
    void
    feedback(std::uint64_t stream_id, Tick ready_at, Tick hit_at)
    {
        ++stats_.feedbacks;
        if (!cfg_.adaptive)
            return;
        State &s = stateRef(stream_id);
        Duration t = hit_at > ready_at ? hit_at - ready_at : 0;
        s.tSum += static_cast<double>(t);
        if (++s.tCount < cfg_.adjustEpoch)
            return;
        double avg = s.tSum / s.tCount;
        s.tSum = 0.0;
        s.tCount = 0;
        if (avg < static_cast<double>(cfg_.tMin)) {
            s.offset *= 1.0 + cfg_.alpha;
            ++stats_.increases;
        } else if (avg > static_cast<double>(cfg_.tMax)) {
            s.offset *= 1.0 - cfg_.alpha;
            ++stats_.decreases;
        }
        if (s.offset < 1.0)
            s.offset = 1.0;
        if (s.offset > cfg_.offsetMax)
            s.offset = cfg_.offsetMax;
    }

    /** Current offset of a stream (offsetInit when never seen). */
    double
    offsetOf(std::uint64_t stream_id) const
    {
        auto it = offset_.find(stream_id);
        return it == offset_.end() ? cfg_.offsetInit
                                   : it->second.offset;
    }

    /** Counters. */
    const PolicyStats &stats() const { return stats_; }

    /** Zero the counters (per-stream offsets are untouched). */
    void resetStats() { stats_ = PolicyStats{}; }

    /** Configuration. */
    const PolicyConfig &config() const { return cfg_; }

  private:
    struct State
    {
        double offset;
        double tSum = 0.0;
        unsigned tCount = 0;
    };

    State &
    stateRef(std::uint64_t stream_id)
    {
        // Bound the table: streams are short-lived STT generations.
        if (offset_.size() > 8192)
            offset_.clear();
        auto [it, inserted] =
            offset_.try_emplace(stream_id, State{cfg_.offsetInit});
        (void)inserted;
        return it->second;
    }

    PolicyConfig cfg_;
    std::unordered_map<std::uint64_t, State> offset_;
    PolicyStats stats_;
};

} // namespace hopp::core

