#include "hopp/markov.hh"

#include "common/logging.hh"

namespace hopp::core
{

namespace
{

std::size_t
setsFor(const MarkovConfig &cfg)
{
    std::size_t sets = cfg.entries / cfg.ways;
    hopp_assert(sets > 0, "Markov table too small");
    while (sets & (sets - 1))
        sets &= sets - 1;
    return sets;
}

} // namespace

MarkovTable::MarkovTable(const MarkovConfig &cfg)
    : cfg_(cfg), table_(setsFor(cfg), cfg.ways)
{
}

void
MarkovTable::train(Pid pid, Vpn prev, Vpn cur)
{
    ++stats_.trained;
    std::uint64_t key = vm::pageKey(pid, prev);
    Entry *e = table_.touch(key);
    if (!e) {
        Entry fresh;
        fresh.succ[0] = cur;
        fresh.count[0] = 1;
        table_.insert(key, fresh);
        return;
    }
    // Known successor: bump its count (saturating).
    for (unsigned s = 0; s < MarkovConfig::slots; ++s) {
        if (e->count[s] > 0 && e->succ[s] == cur) {
            if (e->count[s] < 0xFFFF)
                ++e->count[s];
            return;
        }
    }
    // New successor: take an empty slot or decay the weakest slot
    // (frequency-biased replacement, as Markov predictors do).
    unsigned weakest = 0;
    for (unsigned s = 0; s < MarkovConfig::slots; ++s) {
        if (e->count[s] == 0) {
            weakest = s;
            break;
        }
        if (e->count[s] < e->count[weakest])
            weakest = s;
    }
    if (e->count[weakest] > 0) {
        --e->count[weakest];
        if (e->count[weakest] > 0)
            return; // not yet displaced
        ++stats_.replaced;
    }
    e->succ[weakest] = cur;
    e->count[weakest] = 1;
}

bool
MarkovTable::dominant(Pid pid, Vpn vpn, Vpn &out)
{
    Entry *e = table_.peek(vm::pageKey(pid, vpn));
    if (!e)
        return false;
    unsigned best = 0;
    for (unsigned s = 1; s < MarkovConfig::slots; ++s) {
        if (e->count[s] > e->count[best])
            best = s;
    }
    if (e->count[best] < cfg_.minCount)
        return false;
    out = e->succ[best];
    return true;
}

std::vector<Vpn>
MarkovTable::predict(Pid pid, Vpn vpn, unsigned depth)
{
    if (depth == 0)
        depth = cfg_.chainDepth;
    // Prediction list bounded by slots + chainDepth, built once per
    // hot-page event on the software plane, returned to the caller.
    // hopp-analyze: allow-file(hotpath-alloc)
    std::vector<Vpn> out;
    // Runner-up of the first hop, if it is also confident.
    if (Entry *e = table_.peek(vm::pageKey(pid, vpn))) {
        for (unsigned s = 0; s < MarkovConfig::slots; ++s) {
            if (e->count[s] >= cfg_.minCount)
                out.push_back(e->succ[s]);
        }
    }
    if (out.empty()) {
        ++stats_.misses;
        return out;
    }
    // Greedy chain along dominant successors.
    Vpn cur = out.front();
    for (unsigned d = 1; d < depth; ++d) {
        Vpn next;
        if (!dominant(pid, cur, next))
            break;
        out.push_back(next);
        cur = next;
    }
    stats_.predictions += out.size();
    return out;
}

} // namespace hopp::core
