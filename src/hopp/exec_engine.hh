/**
 * @file
 * Prefetch execution engine (§III-F): deduplicates requests, reads
 * pages from remote over RDMA, and injects PTEs the moment pages
 * arrive. Tracks each outstanding injected page's stream and tier so
 * the policy engine receives timeliness feedback and Figures 19/20 can
 * report per-tier accuracy/coverage.
 */

#pragma once

#include <cstdint>
#include <unordered_map>

#include "hopp/algorithms.hh"
#include "hopp/policy.hh"
#include "hopp/prefetch_sink.hh"
#include "prefetch/prefetcher.hh"
#include "vm/page.hh"
#include "vm/vms.hh"

namespace hopp::core
{

/** Per-tier issue/hit accounting for the Fig. 18-20 ablations. */
struct TierStats
{
    std::uint64_t requested = 0;
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t hits = 0;
    std::uint64_t evictedUnused = 0;

    double
    accuracy() const
    {
        return completed ? static_cast<double>(hits) /
                               static_cast<double>(completed)
                         : 0.0;
    }
};

/**
 * The execution engine: the live-simulation PrefetchSink.
 */
class ExecEngine : public PrefetchSink
{
  public:
    ExecEngine(vm::Vms &vms, PolicyEngine &policy)
        : vms_(vms), policy_(policy)
    {
    }

    /** Request a prefetch of (pid, vpn) on behalf of a stream. */
    void
    request(Pid pid, Vpn vpn, std::uint64_t stream_id, Tier tier,
            Tick now) override
    {
        TierStats &ts = tierStats_[static_cast<unsigned>(tier)];
        ++ts.requested;
        auto result =
            vms_.prefetchInject(pid, vpn, prefetch::origin::hopp, now);
        switch (result) {
          case vm::Vms::InjectResult::NotIssued:
            // Duplicate / resident / in-flight: dropped by the dedup
            // check (§III-F).
            ++deduped_;
            return;
          case vm::Vms::InjectResult::Adopted:
            ++ts.issued;
            ++ts.completed; // data was already local
            break;
          case vm::Vms::InjectResult::Issued:
          case vm::Vms::InjectResult::Joined:
            ++ts.issued;
            break;
        }
        outstanding_[vm::pageKey(pid, vpn)] = Meta{stream_id, tier};
    }

    /**
     * Batched request (§IV huge-page direction): bundle up to
     * @p count consecutive pages from @p vpn into one RDMA transfer.
     * @return pages actually bundled.
     */
    unsigned
    requestBatch(Pid pid, Vpn vpn, unsigned count,
                 std::uint64_t stream_id, Tier tier, Tick now) override
    {
        TierStats &ts = tierStats_[static_cast<unsigned>(tier)];
        ts.requested += count;
        unsigned bundled = vms_.prefetchInjectBatch(
            pid, vpn, count, prefetch::origin::hopp, now);
        ts.issued += bundled;
        deduped_ += count - bundled;
        // Track exactly the pages now in flight for injection.
        for (unsigned i = 0; i < count; ++i) {
            const vm::PageInfo *pi = vms_.pageTable().find(pid, vpn + i);
            if (pi && pi->inflight && pi->injectOnArrival &&
                pi->origin == prefetch::origin::hopp) {
                outstanding_[vm::pageKey(pid, vpn + i)] =
                    Meta{stream_id, tier};
            }
        }
        if (bundled)
            ++batches_;
        return bundled;
    }

    /** Batched requests issued. */
    std::uint64_t batches() const { return batches_; }

    /** A HoPP prefetch finished loading (PTE injected). */
    void
    onCompleted(Pid pid, Vpn vpn)
    {
        auto it = outstanding_.find(vm::pageKey(pid, vpn));
        if (it == outstanding_.end())
            return;
        ++tierStats_[static_cast<unsigned>(it->second.tier)].completed;
    }

    /** First touch of an injected page: feed timeliness to policy. */
    void
    onHit(Pid pid, Vpn vpn, Tick ready_at, Tick hit_at)
    {
        auto it = outstanding_.find(vm::pageKey(pid, vpn));
        if (it == outstanding_.end())
            return;
        ++tierStats_[static_cast<unsigned>(it->second.tier)].hits;
        policy_.feedback(it->second.streamId, ready_at, hit_at);
        outstanding_.erase(it);
    }

    /** An injected page was reclaimed unused. */
    void
    onEvicted(Pid pid, Vpn vpn)
    {
        auto it = outstanding_.find(vm::pageKey(pid, vpn));
        if (it == outstanding_.end())
            return;
        ++tierStats_[static_cast<unsigned>(it->second.tier)]
              .evictedUnused;
        outstanding_.erase(it);
    }

    /** Stats of one tier. */
    const TierStats &
    tierStats(Tier t) const
    {
        return tierStats_[static_cast<unsigned>(t)];
    }

    /** Requests dropped by dedup. */
    std::uint64_t deduped() const { return deduped_; }

    /** Prefetches in flight or injected-unreferenced. */
    std::size_t
    outstanding() const override
    {
        return outstanding_.size();
    }

    /** Zero the counters (outstanding requests are untouched). */
    void
    resetStats()
    {
        for (auto &t : tierStats_)
            t = TierStats{};
        deduped_ = 0;
        batches_ = 0;
    }

  private:
    struct Meta
    {
        std::uint64_t streamId;
        Tier tier;
    };

    vm::Vms &vms_;
    PolicyEngine &policy_;
    std::unordered_map<std::uint64_t, Meta> outstanding_;
    TierStats tierStats_[tierCount];
    std::uint64_t deduped_ = 0;
    std::uint64_t batches_ = 0;
};

} // namespace hopp::core

