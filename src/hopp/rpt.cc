#include "hopp/rpt.hh"

#include "common/logging.hh"

namespace hopp::core
{

namespace
{

std::size_t
setsFor(const RptCacheConfig &cfg)
{
    std::uint64_t entries = cfg.capacityBytes / cfg.entryBytes;
    std::uint64_t sets = entries / cfg.ways;
    hopp_assert(sets > 0, "RPT cache too small");
    while (sets & (sets - 1))
        sets &= sets - 1;
    return static_cast<std::size_t>(sets);
}

} // namespace

RptCache::RptCache(Rpt &rpt, mem::Dram &dram, const RptCacheConfig &cfg)
    : rpt_(rpt), dram_(dram), cfg_(cfg), cache_(setsFor(cfg), cfg.ways)
{
}

void
RptCache::writeback(Ppn ppn, const Line &line)
{
    if (!line.dirty)
        return;
    ++stats_.writebacks;
    dram_.recordTraffic(mem::TrafficSource::RptUpdate, cfg_.entryBytes);
    rpt_.store(ppn, line.entry);
}

std::optional<RptEntry>
RptCache::lookup(Ppn ppn)
{
    ++stats_.lookups;
    if (Line *line = cache_.touch(ppn)) {
        ++stats_.hits;
        return line->entry;
    }
    ++stats_.misses;
    dram_.recordTraffic(mem::TrafficSource::RptQuery, cfg_.missFillBytes);
    auto from_dram = rpt_.load(ppn);
    if (!from_dram) {
        ++stats_.missUnmapped;
        return std::nullopt;
    }
    auto ev = cache_.insert(ppn, Line{*from_dram, false});
    if (ev)
        writeback(ev->tag, ev->value);
    return from_dram;
}

void
RptCache::update(Ppn ppn, const RptEntry &e)
{
    ++stats_.updates;
    auto ev = cache_.insert(ppn, Line{e, true});
    if (ev)
        writeback(ev->tag, ev->value);
}

void
RptCache::invalidate(Ppn ppn)
{
    // Erase the cached entry and write the removal through to the
    // DRAM RPT immediately: a tombstone line would pollute the small
    // cache for no benefit.
    ++stats_.invalidates;
    cache_.erase(ppn);
    ++stats_.writebacks;
    dram_.recordTraffic(mem::TrafficSource::RptUpdate, cfg_.entryBytes);
    rpt_.erase(ppn);
}

} // namespace hopp::core
