/**
 * @file
 * Prefetch training framework (§III-D): consumes the hot-page records
 * the MC hardware deposits in reserved DRAM, clusters them into
 * streams via the STT, runs the enabled prefetch tiers, and forwards
 * policy-expanded prefetch requests to the execution engine.
 */

#pragma once

#include <cstdint>
#include <unordered_map>

#include "hopp/algorithms.hh"
#include "hopp/hot_page.hh"
#include "hopp/markov.hh"
#include "hopp/policy.hh"
#include "hopp/prefetch_sink.hh"
#include "hopp/stt.hh"

namespace hopp::core
{

/** Trainer counters. */
struct TrainerStats
{
    std::uint64_t hotPages = 0;
    std::uint64_t predictions[tierCount] = {}; //!< per tier
    std::uint64_t noPattern = 0;
    std::uint64_t batchesIssued = 0;

    std::uint64_t
    totalPredictions() const
    {
        std::uint64_t sum = 0;
        for (auto p : predictions)
            sum += p;
        return sum;
    }
};

/**
 * Huge-batch prefetching (§IV): once a simple stream has proven long,
 * swap many consecutive future pages in a single request instead of
 * page-by-page, amortizing the per-transfer latency — the software
 * side of the paper's 2 MB-reservation direction.
 */
struct BatchConfig
{
    bool enabled = false;

    /** Pages bundled per batch request (the paper suggests 512). */
    unsigned batchPages = 64;

    /** Stream length (pages) before batching kicks in. */
    std::uint64_t minStreamLen = 192;

    /** Issue a batch every this many hot pages of the stream. */
    unsigned everyHotPages = 32;
};

/**
 * The software training loop.
 */
class Trainer
{
  public:
    Trainer(Stt &stt, PolicyEngine &policy, PrefetchSink &exec,
            unsigned tier_mask = tiers::all, BatchConfig batch = {},
            MarkovConfig markov = {})
        : stt_(stt), policy_(policy), exec_(exec), tierMask_(tier_mask),
          batch_(batch), markov_(markov)
    {
    }

    /** Process one hot-page record at time @p now. */
    void
    onHotPage(const HotPage &hp, Tick now)
    {
        onHotPage(hp, stt_.feed(hp.pid, hp.vpn), now);
    }

    /**
     * Process one hot-page record whose STT feed already happened —
     * the shared-STT fan-out path: backends with equal STT configs see
     * identical tables, so the pipeline feeds each distinct table once
     * per hot page and hands every trainer of the group the same view.
     * Identical to each trainer feeding a private copy.
     */
    void
    onHotPage(const HotPage &hp, const std::optional<StreamView> &view,
              Tick now)
    {
        ++stats_.hotPages;
        if (tierMask_ & tiers::markov)
            trainMarkov(hp);
        if (!view) {
            // No stream context yet; the correlation tier can still
            // act on a learned transition.
            if (tierMask_ & tiers::markov)
                predictMarkov(hp, now);
            return;
        }
        auto pred = runThreeTier(*view, tierMask_);
        if (!pred) {
            if ((tierMask_ & tiers::markov) && predictMarkov(hp, now))
                return;
            ++stats_.noPattern;
            return;
        }
        ++stats_.predictions[static_cast<unsigned>(pred->tier)];
        if (batch_.enabled) {
            // Supplemental far-ahead coverage; the per-page path below
            // still serves the near window (batched pages dedup).
            maybeBatch(*view, *pred, now);
        }
        for (std::uint64_t off : policy_.offsets(view->streamId)) {
            if (auto target = pred->target(off)) {
                exec_.request(hp.pid, *target, view->streamId,
                              pred->tier, now);
            }
        }
    }

    /** The correlation table (tests/benches). */
    MarkovTable &markov() { return markov_; }

    /** Counters. */
    const TrainerStats &stats() const { return stats_; }

    /** Zero the counters. */
    void resetStats() { stats_ = TrainerStats{}; }

    /** Enabled tiers. */
    unsigned tierMask() const { return tierMask_; }

  private:
    /** Issue a huge batch for long unit-stride simple streams. */
    void
    maybeBatch(const StreamView &view, const Prediction &pred, Tick now)
    {
        if (pred.tier != Tier::Ssp ||
            (pred.step != 1 && pred.step != -1) ||
            view.length < batch_.minStreamLen) {
            return;
        }
        std::uint64_t &countdown = batchCountdown_[view.streamId];
        if (countdown > 0) {
            --countdown;
            return; // a recent batch still covers the far window
        }
        // A batch's data arrives only after the whole bundle
        // serializes, so it must start at least one batch-width ahead
        // of the consumption front or its leading pages arrive late.
        std::uint64_t off = std::max<std::uint64_t>(
            policy_.offsets(view.streamId).front(),
            batch_.batchPages);
        auto start = pred.target(off);
        if (!start)
            return;
        Vpn first = pred.step > 0
                        ? *start
                        : (*start - Vpn{} >= batch_.batchPages - 1
                               ? *start - (batch_.batchPages - 1)
                               : Vpn{});
        unsigned bundled = exec_.requestBatch(
            view.pid, first, batch_.batchPages, view.streamId,
            Tier::Ssp, now);
        if (bundled == 0)
            return;
        ++stats_.batchesIssued;
        countdown = batch_.everyHotPages;
        if (batchCountdown_.size() > 4096)
            batchCountdown_.clear();
    }

    /** Feed the correlation table with the per-PID hot sequence. */
    void
    trainMarkov(const HotPage &hp)
    {
        auto [it, fresh] = lastHot_.try_emplace(hp.pid, hp.vpn);
        if (!fresh) {
            if (it->second != hp.vpn)
                markov_.train(hp.pid, it->second, hp.vpn);
            it->second = hp.vpn;
        }
    }

    /**
     * Correlation-tier prediction: chase the learned successor chain
     * as deep as the stream-agnostic policy offset asks.
     * @return true when at least one target was requested.
     */
    bool
    predictMarkov(const HotPage &hp, Tick now)
    {
        // The correlation tier has no STT stream; key the policy
        // offset on a per-PID pseudo-stream and chase the successor
        // chain as deep as the adaptive offset asks.
        // Pseudo-stream id packing. hopp-lint: allow(raw)
        std::uint64_t stream_id = (1ull << 62) | hp.pid.raw();
        auto depth = static_cast<unsigned>(std::min<std::uint64_t>(
            16, std::max<std::uint64_t>(
                    2, policy_.offsets(stream_id).front())));
        auto targets = markov_.predict(hp.pid, hp.vpn, depth);
        if (targets.empty())
            return false;
        ++stats_.predictions[static_cast<unsigned>(Tier::Mkv)];
        for (Vpn t : targets)
            exec_.request(hp.pid, t, stream_id, Tier::Mkv, now);
        return true;
    }

    Stt &stt_;
    PolicyEngine &policy_;
    PrefetchSink &exec_;
    unsigned tierMask_;
    BatchConfig batch_;
    MarkovTable markov_;
    std::unordered_map<std::uint64_t, std::uint64_t> batchCountdown_;
    std::unordered_map<Pid, Vpn> lastHot_;
    TrainerStats stats_;
};

} // namespace hopp::core

