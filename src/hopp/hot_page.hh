/**
 * @file
 * The hot-page record HoPP hardware writes to reserved DRAM (step 2 of
 * Figure 4): the PID+VPN combo produced by the RPT cache, plus the
 * shared/huge flags forwarded for software policy (§III-C) and the
 * extraction timestamp.
 */

#pragma once

#include "common/types.hh"
#include "trace/trace_buffer.hh"

namespace hopp::core
{

/** One hot page delivered from the MC to HoPP software. */
struct HotPage
{
    Pid pid;
    Vpn vpn;
    Ppn ppn;
    bool shared = false;
    bool huge = false;
    Tick time;
};

/** The reserved-DRAM hot-page area. */
using HotPageRing = trace::RingBuffer<HotPage>;

/** Bytes one packed hot-page record occupies in DRAM (64-bit combo) —
 *  a size, not an address. */
// hopp-lint: allow(raw-int-addr)
inline constexpr std::uint64_t hotPageRecordBytes = 8;

} // namespace hopp::core

