#include "hopp/algorithms.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace hopp::core
{

namespace
{

// These algorithms run on every full-view hot page of every training
// backend, so their scratch lives on the stack: histories are capped
// at maxTrainHistory VPNs (asserted in the Stt constructor), and with
// at most L-1 strides a quadratic re-count is far cheaper than the
// hash map it replaces — the decisions are identical, because the
// running count of s[i] over s[0..i] is exactly what the map held
// when it visited position i.
constexpr std::size_t maxTrainStrides = maxTrainHistory - 1;

/**
 * Most frequent value of values[0..n-1] and its count; ties break
 * toward the value that reached the winning count first, matching the
 * insertion-ordered accumulation the trainer has always used.
 */
std::pair<std::int64_t, unsigned>
mode(const std::int64_t *values, std::size_t n)
{
    std::int64_t best = values[0];
    unsigned best_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
        unsigned c = 0;
        for (std::size_t j = 0; j <= i; ++j)
            c += values[j] == values[i];
        if (c > best_count) {
            best_count = c;
            best = values[i];
        }
    }
    return {best, best_count};
}

} // namespace

std::optional<Prediction>
runSsp(const StreamView &view)
{
    const auto &s = *view.strides;
    // Dominant stride: a value occurring >= L/2 times among the L-1
    // strides (§III-D2). First position whose running count reaches
    // the majority wins, as with the accumulating count it replaces.
    unsigned need = (static_cast<unsigned>(s.size()) + 1) / 2;
    for (std::size_t i = 0; i < s.size(); ++i) {
        unsigned c = 0;
        for (std::size_t j = 0; j <= i; ++j)
            c += s[j] == s[i];
        if (c >= need && s[i] != 0)
            return Prediction{Tier::Ssp, view.vpnA(), s[i]};
    }
    return std::nullopt;
}

std::optional<Prediction>
runLsp(const StreamView &view)
{
    // Algorithm 1. With strides s[0..n-1] (newest last), the target
    // pattern is the two newest strides (pattern_target); candidates
    // are earlier positions where the same two strides occur in
    // sequence. Each candidate contributes its following stride
    // (next_stride) and the VPN distance to the next repetition
    // (stride_sum).
    const auto &s = *view.strides;
    const auto &v = *view.vpns;
    std::size_t n = s.size();
    if (n < 4)
        return std::nullopt;
    hopp_assert(n <= maxTrainStrides, "history exceeds training cap");
    std::int64_t pt0 = s[n - 2];
    std::int64_t pt1 = s[n - 1];
    // Trainer-side scratch, bounded by the per-page history length and
    // live only for this software-plane training call.
    std::int64_t next_stride[maxTrainStrides];
    std::int64_t stride_sum[maxTrainStrides];
    std::size_t candidates = 0;
    // The VPN ending the most recent pattern occurrence; v has n+1
    // entries, so v[n] is VPN_A (the target pattern's end).
    std::size_t last_end = n;
    // Scan candidates newest-first; a candidate pair (s[i], s[i+1])
    // must not overlap the target pattern, so i + 1 <= n - 3.
    for (std::int64_t si = static_cast<std::int64_t>(n) - 4; si >= 0;
         --si) {
        auto i = static_cast<std::size_t>(si);
        if (s[i] == pt0 && s[i + 1] == pt1) {
            next_stride[candidates] = s[i + 2];
            // v[i+2] ends the candidate occurrence.
            stride_sum[candidates] = signedDelta(v[i + 2], v[last_end]);
            ++candidates;
            last_end = i + 2;
        }
    }
    if (candidates == 0)
        return std::nullopt;
    // A genuine ladder yields *consistent* continuations: require the
    // dominant next stride and repetition distance to be a majority of
    // the candidates, or the "repetition" is just noise from a small
    // stride alphabet (e.g. ripple jitter) and must fall through to
    // RSP.
    auto [stride_target, st_count] = mode(next_stride, candidates);
    auto [pattern_stride, ps_count] = mode(stride_sum, candidates);
    if (st_count * 2 <= candidates || ps_count * 2 <= candidates)
        return std::nullopt;
    if (pattern_stride == 0)
        return std::nullopt;
    if (stride_target < 0 &&
        static_cast<std::uint64_t>(-stride_target) > view.vpnA() - Vpn{})
        return std::nullopt;
    return Prediction{Tier::Lsp, offsetBy(view.vpnA(), stride_target),
                      pattern_stride};
}

std::optional<Prediction>
runRsp(const StreamView &view)
{
    // Algorithm 2: count "ripple pages" — positions from which the
    // cumulative stride returns within max_stride. The newest stride
    // is checked directly; then we accumulate backwards.
    constexpr std::int64_t max_stride = 2;
    const auto &s = *view.strides;
    unsigned ripple_num = 0;
    if (std::llabs(s.back()) <= max_stride)
        ++ripple_num;
    std::int64_t accumulate = 0;
    for (std::size_t i = s.size() - 1; i-- > 0;) {
        accumulate += s[i];
        if (std::llabs(accumulate) <= max_stride) {
            ++ripple_num;
            accumulate = 0;
        }
    }
    unsigned need = (static_cast<unsigned>(view.vpns->size())) / 2;
    if (ripple_num < need)
        return std::nullopt;
    return Prediction{Tier::Rsp, view.vpnA(), 1};
}

std::optional<Prediction>
runThreeTier(const StreamView &view, unsigned tier_mask)
{
    if (tier_mask & tiers::ssp) {
        if (auto p = runSsp(view))
            return p;
    }
    if (tier_mask & tiers::lsp) {
        if (auto p = runLsp(view))
            return p;
    }
    if (tier_mask & tiers::rsp) {
        if (auto p = runRsp(view))
            return p;
    }
    return std::nullopt;
}

} // namespace hopp::core
